//! Sharded, WAL-durable serving layer over the online
//! [`EntityStore`](multiem_online::EntityStore).
//!
//! PR 1 made MultiEM incremental; this crate makes it *deployable*. The
//! paper's mutual-top-K + density-pruning pipeline becomes a long-running
//! JSON service in the shape the related `VectorDB` repo uses for vector
//! stores — a thin request layer over a sharded, concurrently readable
//! index:
//!
//! * [`ShardedEntityStore`] — N hash-partitioned stores, each behind its own
//!   `RwLock`: single-writer-per-shard ingestion, fully concurrent
//!   cross-shard reads, and a fan-out [`ShardedEntityStore::match_record`]
//!   that merges per-shard candidates under the paper's mutual top-K rule;
//! * [`Wal`] — a binary, length-prefixed, CRC-framed write-ahead log (the
//!   framing lives in [`multiem_online::wire`], shared with the compact
//!   snapshot codec and the segment files) with replay-on-startup, a
//!   configurable [`FsyncPolicy`] for machine-crash durability, and
//!   epoch-versioned **delta** checkpoints (only dirty shards re-snapshot;
//!   the atomic manifest rename stays the commit point), so restarts never
//!   re-ingest;
//! * pluggable record storage per shard
//!   ([`StorageBackend`], `--storage mem|disk`): the disk backend spills
//!   records and embeddings to append-only segment files with a bounded
//!   hot cache, so serving memory stops growing linearly with ingest;
//! * backpressure — a bounded per-shard ingest queue; `POST /records`
//!   answers `429` with a `Retry-After` derived from the rejecting shard's
//!   backlog and measured drain rate when a target shard is full;
//! * record deletion — `DELETE /records/{id}` and the batch
//!   `POST /records/delete` WAL-append a [`WalOp::Delete`] and detach the
//!   record from its cluster; tombstoned records are reclaimed from disk
//!   by the checkpoint-time segment compaction
//!   ([`multiem_online::RecordStore::compact`]);
//! * [`MatchServer`] — a dependency-free HTTP/1.1 server exposing
//!   `POST /records`, `DELETE /records/{id}`, `POST /match`,
//!   `POST /snapshot`, `POST /admin/shutdown`, `GET /stats`,
//!   `GET /healthz`, `GET /readyz` and the `GET /debug/*` introspection
//!   surface, fronted by
//!   the event-driven [`Reactor`] in [`net`]: an acceptor plus a few I/O
//!   event loops multiplex *many* nonblocking keep-alive connections
//!   (incremental request parsing, buffered writeback), and only fully
//!   parsed requests occupy the fixed-size worker thread pool — so
//!   connection count and worker count scale independently, and graceful
//!   shutdown drains in-flight requests and flushes WALs before exit;
//! * `loadgen` (a `src/bin` tool) — a seeded mixed read/write load generator
//!   (`--connections` keep-alive sockets, decoupled from in-flight request
//!   concurrency) reporting p50/p99 latency and throughput, used by CI to
//!   track the serving-path perf trajectory (`BENCH_serve.json`);
//! * observability ([`obs`]) — a dependency-free metrics registry behind
//!   `GET /metrics` (Prometheus text exposition; counters, gauges and
//!   lock-free log-linear latency histograms), per-request span traces
//!   (`--trace-sample-rate`, `--slow-request-ms`) whose stage durations sum
//!   exactly to the access-log latency, and leveled JSON-lines structured
//!   logging (`--log-level`, `--access-log`, size-based rotation via
//!   `--log-rotate-bytes`). Scraping never takes a shard or WAL lock, and
//!   everything with measurable cost sits behind `--no-telemetry` so CI can
//!   gate the overhead;
//! * workload analytics ([`obs::window`], [`obs::topk`], [`obs::exemplar`])
//!   — a rolling time window of per-endpoint latency histograms, windowed
//!   heavy-hitter sketches over ingest sources / shards / matched entities,
//!   and a ring of slowest-request exemplars, served lock-free from
//!   `GET /debug/window`, `/debug/top`, `/debug/slow` and `/debug/storage`
//!   on the I/O fast path (rendered live by the `obstop` terminal
//!   dashboard), with `GET /readyz` degrading to `503` on ingest backlog or
//!   windowed fsync-latency thresholds.
//!
//! ```no_run
//! use multiem_embed::HashedLexicalEncoder;
//! use multiem_serve::{MatchServer, ServeConfig};
//!
//! let server = MatchServer::bind(
//!     ServeConfig::default(),
//!     HashedLexicalEncoder::default(),
//!     "127.0.0.1:7878",
//! )
//! .expect("bind");
//! server.run().expect("serve");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod net;
pub mod obs;
pub mod server;
pub mod shard;
pub mod sync;
pub mod wal;

pub use net::Reactor;
pub use obs::{ObsConfig, Telemetry};
pub use server::{MatchServer, ServeConfig, ServeError, ServerHandle, StorageBackend};
pub use shard::{GlobalEntityId, MatchTiming, ShardedEntityStore, ShardedStats};
pub use sync::{lock_unpoisoned, LockClass, OrderedMutex, OrderedRwLock};
pub use wal::{AppendTiming, FsyncPolicy, Wal, WalOp};
