//! Write-ahead log for the serving layer.
//!
//! Every accepted write is appended to its shard's log file before it is
//! applied, using the binary framing of [`multiem_online::wire`]:
//! `[len u32][crc32 u32][payload]`, where the payload is the binary value
//! encoding of one [`WalOp`]. The server keeps **one `Wal` per shard** so
//! writers to different shards never contend on logging; on startup each
//! shard's log is replayed in its own append order through the same
//! deterministic routing, which restores the exact pre-crash store state
//! (shards are independent, so per-shard order is the only order that
//! matters).
//!
//! Torn tails — a process killed mid-append — are detected by the frame CRC
//! and truncated away on open, so the log is always append-clean. A
//! checkpoint (`POST /snapshot`) persists every shard snapshot and swaps in
//! a fresh log epoch (see the server's `checkpoint`), bounding replay time.

use multiem_online::wire::{self, Frame};
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When the WAL calls `fsync` (ROADMAP: "fsync policy for machine-crash
/// durability"). Every append is always flushed to the OS, so acknowledged
/// writes survive a *process* kill under any policy; the policy decides how
/// much a whole-machine crash (power loss) can lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync: machine-crash durability rides on the OS flushing dirty
    /// pages (typically within ~30 s). Fastest.
    Never,
    /// Fsync at most once per interval, piggybacked on appends: a machine
    /// crash loses at most the last interval's writes. The default
    /// ([`FsyncPolicy::default`] is 200 ms).
    Interval(Duration),
    /// Fsync after every append: an acknowledged write survives power loss,
    /// at a per-write latency cost.
    Always,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(200))
    }
}

impl FsyncPolicy {
    /// Parse a `--fsync` CLI value (`never`, `interval`, `always`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::default()),
            "always" => Ok(FsyncPolicy::Always),
            other => Err(format!(
                "unknown fsync policy `{other}` (expected never, interval or always)"
            )),
        }
    }
}

/// One durable, replayable operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// A single record accepted for ingestion, exactly as received.
    Insert(Record),
    /// A record deletion, keyed by the shard-local entity id (the WAL is
    /// per-shard, so the shard index is implied by which log the op is in).
    /// Replaying a delete of an id the store no longer knows is a no-op —
    /// deletion is idempotent end to end.
    Delete(EntityId),
}

impl WalOp {
    /// Binary payload of this op (one WAL frame body).
    pub fn to_bytes(&self) -> Vec<u8> {
        wire::value_to_bytes(&self.to_value())
    }

    /// Decode a WAL frame body.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let value = wire::value_from_bytes(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Self::from_value(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Where one [`Wal::append_timed`] call's time and bytes went.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendTiming {
    /// Frame bytes (header + payload) this append added to the log.
    pub appended_bytes: u64,
    /// Whether the append fsynced (policy-dependent).
    pub fsynced: bool,
    /// Time inside `fdatasync` (0 when not fsynced).
    pub fsync_ns: u64,
    /// Whole append wall time, fsync included.
    pub total_ns: u64,
}

/// Nanoseconds since `started`, saturated into a `u64`.
fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Outcome of opening a WAL file.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every intact op, in append order.
    pub ops: Vec<WalOp>,
    /// Whether a torn tail was found (and truncated away).
    pub torn_tail: bool,
}

/// An append-only, CRC-framed operation log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    fsync: FsyncPolicy,
    last_sync: Instant,
}

impl Wal {
    /// [`Wal::open_with`] under the default fsync policy.
    pub fn open(path: &Path) -> io::Result<(Self, WalRecovery)> {
        Self::open_with(path, FsyncPolicy::default())
    }

    /// Open (or create) the log at `path`, replay-read every intact frame,
    /// and truncate any torn tail so the file ends on a frame boundary.
    pub fn open_with(path: &Path, fsync: FsyncPolicy) -> io::Result<(Self, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;

        let mut ops = Vec::new();
        let mut clean_bytes: u64 = 0;
        let mut torn_tail = false;
        {
            let mut reader = BufReader::new(&mut file);
            loop {
                match wire::read_frame(&mut reader)? {
                    Frame::Payload(payload) => {
                        ops.push(WalOp::from_bytes(&payload)?);
                        clean_bytes += (wire::FRAME_HEADER_BYTES + payload.len()) as u64;
                    }
                    Frame::Eof => break,
                    Frame::Torn => {
                        torn_tail = true;
                        break;
                    }
                }
            }
        }
        if torn_tail {
            file.set_len(clean_bytes)?;
        }
        file.seek(SeekFrom::Start(clean_bytes))?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                bytes: clean_bytes,
                fsync,
                last_sync: Instant::now(),
            },
            WalRecovery { ops, torn_tail },
        ))
    }

    /// Append one op and flush it to the OS, so the write survives a process
    /// kill; the configured [`FsyncPolicy`] decides whether (and how often)
    /// the append is additionally fsynced for machine-crash durability.
    pub fn append(&mut self, op: &WalOp) -> io::Result<()> {
        self.append_timed(op).map(|_| ())
    }

    /// [`Wal::append`] plus an [`AppendTiming`] breakdown (the request
    /// trace's `wal_append` and `fsync` spans, and the WAL byte/fsync
    /// counters on `/metrics`).
    pub fn append_timed(&mut self, op: &WalOp) -> io::Result<AppendTiming> {
        self.append_batch_timed(std::slice::from_ref(op))
    }

    /// Group commit: append a batch of ops as consecutive frames through one
    /// buffered writer, with **one** flush to the OS and **one** fsync
    /// decision for the whole batch — N records admitted together share a
    /// single durability round-trip instead of paying one each (the
    /// dominant cost under `FsyncPolicy::Always`). The log bytes are
    /// identical to appending each op in order; an empty batch is a no-op.
    pub fn append_batch_timed(&mut self, ops: &[WalOp]) -> io::Result<AppendTiming> {
        if ops.is_empty() {
            return Ok(AppendTiming::default());
        }
        let started = Instant::now();
        let mut appended_bytes = 0u64;
        let mut writer = BufWriter::new(&mut self.file);
        for op in ops {
            let payload = op.to_bytes();
            wire::write_frame(&mut writer, &payload)?;
            appended_bytes += (wire::FRAME_HEADER_BYTES + payload.len()) as u64;
        }
        writer.flush()?;
        drop(writer);
        self.bytes += appended_bytes;
        let due = match self.fsync {
            FsyncPolicy::Never => false,
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(interval) => self.last_sync.elapsed() >= interval,
        };
        let mut fsync_ns = 0u64;
        if due {
            let sync_started = Instant::now();
            self.sync()?;
            fsync_ns = elapsed_ns(sync_started);
        }
        Ok(AppendTiming {
            appended_bytes,
            fsynced: due,
            fsync_ns,
            total_ns: elapsed_ns(started),
        })
    }

    /// Force an fsync now (checkpoints call this before snapshotting so the
    /// superseded log is durable at its commit point).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Drop every logged op (called right after a successful checkpoint has
    /// persisted the state the ops built).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.bytes = 0;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every intact op of a WAL file without opening it for append (used by
/// tooling/tests).
pub fn read_ops(path: &Path) -> io::Result<Vec<WalOp>> {
    let mut ops = Vec::new();
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    while let Frame::Payload(payload) = wire::read_frame(&mut reader)? {
        ops.push(WalOp::from_bytes(&payload)?);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_wal_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "multiem-wal-test-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn op(text: &str) -> WalOp {
        WalOp::Insert(Record::from_texts([text]))
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let path = temp_wal_path("roundtrip");
        {
            let (mut wal, recovery) = Wal::open(&path).unwrap();
            assert!(recovery.ops.is_empty());
            assert!(!recovery.torn_tail);
            wal.append(&op("first record")).unwrap();
            wal.append(&op("second record")).unwrap();
            assert!(wal.bytes() > 0);
        } // drop without any checkpoint: simulates a killed process
        let (wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.ops, vec![op("first record"), op("second record")]);
        assert!(!recovery.torn_tail);
        assert!(wal.bytes() > 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = temp_wal_path("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&op("kept")).unwrap();
            wal.append(&op("torn away")).unwrap();
        }
        // Tear the last 2 bytes off, as if the process died mid-write.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();

        let (mut wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.ops, vec![op("kept")]);
        assert!(recovery.torn_tail);
        // The file is clean again: appends after recovery read back fine.
        wal.append(&op("after recovery")).unwrap();
        drop(wal);
        let ops = read_ops(&path).unwrap();
        assert_eq!(ops, vec![op("kept"), op("after recovery")]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fsync_always_survives_a_simulated_torn_tail() {
        let path = temp_wal_path("fsync-always");
        {
            let (mut wal, _) = Wal::open_with(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(wal.fsync_policy(), FsyncPolicy::Always);
            wal.append(&op("durable one")).unwrap();
            wal.append(&op("durable two")).unwrap();
            wal.append(&op("torn victim")).unwrap();
        }
        // Simulate a machine crash that tore the tail mid-frame: under
        // `always`, every *previous* append was fsynced before the next was
        // acknowledged, so tearing the last frame can only lose that frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut wal, recovery) = Wal::open_with(&path, FsyncPolicy::Always).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.ops, vec![op("durable one"), op("durable two")]);
        // The truncated log keeps accepting synced appends.
        wal.append(&op("after crash")).unwrap();
        drop(wal);
        let ops = read_ops(&path).unwrap();
        assert_eq!(
            ops,
            vec![op("durable one"), op("durable two"), op("after crash")]
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fsync_policies_parse_and_apply() {
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert!(matches!(
            FsyncPolicy::parse("interval"),
            Ok(FsyncPolicy::Interval(_))
        ));
        assert!(FsyncPolicy::parse("sometimes").is_err());

        // A zero interval syncs on every append, like `always`.
        let path = temp_wal_path("fsync-interval");
        let (mut wal, _) = Wal::open_with(&path, FsyncPolicy::Interval(Duration::ZERO)).unwrap();
        wal.append(&op("synced")).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.ops, vec![op("synced")]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn delete_ops_roundtrip_alongside_inserts() {
        let path = temp_wal_path("delete-ops");
        let delete = WalOp::Delete(EntityId::new(2, 17));
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&op("kept record")).unwrap();
            wal.append(&delete).unwrap();
            wal.append(&WalOp::Delete(EntityId::new(0, 0))).unwrap();
        }
        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(
            recovery.ops,
            vec![
                op("kept record"),
                delete,
                WalOp::Delete(EntityId::new(0, 0))
            ]
        );
        assert!(!recovery.torn_tail);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn batch_append_matches_sequential_appends() {
        let batch = vec![op("one"), WalOp::Delete(EntityId::new(1, 4)), op("three")];

        // Sequential appends...
        let seq_path = temp_wal_path("batch-seq");
        let (mut seq_wal, _) = Wal::open_with(&seq_path, FsyncPolicy::Always).unwrap();
        let mut seq_bytes = 0;
        for op in &batch {
            seq_bytes += seq_wal.append_timed(op).unwrap().appended_bytes;
        }

        // ...and one group-committed batch produce byte-identical logs.
        let batch_path = temp_wal_path("batch-group");
        let (mut batch_wal, _) = Wal::open_with(&batch_path, FsyncPolicy::Always).unwrap();
        let timing = batch_wal.append_batch_timed(&batch).unwrap();
        assert_eq!(timing.appended_bytes, seq_bytes);
        assert!(timing.fsynced, "always policy fsyncs the batch once");
        assert_eq!(batch_wal.bytes(), seq_wal.bytes());
        drop(seq_wal);
        drop(batch_wal);
        assert_eq!(
            std::fs::read(&seq_path).unwrap(),
            std::fs::read(&batch_path).unwrap()
        );
        assert_eq!(read_ops(&batch_path).unwrap(), batch);

        // Empty batches change nothing and never fsync.
        let (mut wal, _) = Wal::open_with(&batch_path, FsyncPolicy::Always).unwrap();
        let noop = wal.append_batch_timed(&[]).unwrap();
        assert_eq!(noop.appended_bytes, 0);
        assert!(!noop.fsynced);
        std::fs::remove_dir_all(seq_path.parent().unwrap()).ok();
        std::fs::remove_dir_all(batch_path.parent().unwrap()).ok();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_wal_path("truncate");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&op("a")).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(&op("b")).unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.ops, vec![op("b")]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
