//! The HTTP matching service.
//!
//! [`MatchServer`] glues the pieces together: a [`ShardedEntityStore`]
//! behind per-shard `RwLock`s, an optional [`Wal`] for durability, and the
//! event-driven [`Reactor`](crate::net::Reactor) front end — an acceptor
//! plus `io_threads` event loops multiplexing nonblocking keep-alive
//! connections, with fully parsed requests executed on the fixed-size
//! [`rayon::ThreadPool`] worker pool. Connection count and worker count
//! scale independently: idle connections cost buffers, not threads.
//!
//! # Endpoints
//!
//! | Route            | Body                                   | Effect |
//! |------------------|----------------------------------------|--------|
//! | `GET /healthz`   | —                                      | liveness probe (answered on the I/O thread, no shard locks) |
//! | `GET /readyz`    | —                                      | readiness: `503` when the ingest backlog or the windowed p99 fsync latency crosses its `--ready-max-*` threshold |
//! | `GET /stats`     | —                                      | aggregate + per-shard [`StoreStats`], WAL size, queue/storage counters (lock-free: shards a writer holds report their last published stats) |
//! | `GET /metrics`   | —                                      | Prometheus text exposition: request/ingest/delete/429 counters, WAL byte/fsync counters, end-to-end + per-stage latency histograms, uptime/epoch/queue/cache gauges, windowed rate + quantile gauges (same lock-free discipline as `/stats`) |
//! | `GET /debug/window` | —                                   | per-endpoint rates and p50/p99 over the rolling `--window-secs` window, plus windowed fsync latency |
//! | `GET /debug/top` | —                                      | heavy hitters of the current + previous window: ingest sources, routed shards, match-result entities |
//! | `GET /debug/slow` | —                                     | the slowest requests of the current + previous window, with full span traces |
//! | `GET /debug/storage` | —                                  | per-shard storage health: cache hit rate, WAL bytes, per-segment live ratios |
//! | `POST /records`  | `{"records": [[v, ...], ...]}`         | WAL-append + insert each record into its shard; `429` + adaptive `Retry-After` (backlog / drain rate, clamped 1..=30) when a target shard's ingest queue is full |
//! | `DELETE /records/{shard}-{source}-{row}` | —              | WAL-append + delete one record (404 for unknown/already-deleted ids) |
//! | `POST /records/delete` | `{"ids": [[shard, source, row], ...]}` | batch deletion; per-id outcomes, unknown ids report `false` |
//! | `POST /match`    | `{"record": [v, ...]}`                 | read-only fan-out match across all shards |
//! | `POST /snapshot` | —                                      | delta checkpoint: persist changed shards (disk shards compact low-live segments first), truncate the WAL, GC orphaned + superseded segment files |
//! | `POST /admin/shutdown` | —                                | graceful shutdown: stop accepting, drain in-flight requests, flush WALs, exit 0 |
//!
//! Attribute values are JSON strings, numbers or `null`, positionally
//! aligned with the configured schema.
//!
//! # Durability protocol
//!
//! Each shard owns its own WAL file, so writers to different shards share
//! no lock at all: a write takes its shard's write lock, appends to *that
//! shard's* WAL (`shard i → wals[i]` lock order everywhere), then applies
//! the insert. Startup restores the checkpoint named by `MANIFEST.json` (if
//! any) and replays each shard's WAL in its own order — shards are
//! independent, so per-shard order is the only order that matters — through
//! the same deterministic routing. Killing the process at any point loses
//! at most the torn tail of a final append; acknowledged writes survive.
//!
//! Checkpoints are epoch-versioned **deltas** that commit via an atomic
//! manifest rename (see [`checkpoint`]'s step list): only shards whose
//! write sequence moved since the last checkpoint write a new snapshot
//! file, the manifest records a per-shard snapshot-epoch vector, and with
//! [`StorageBackend::Disk`] even a dirty shard's snapshot is just its
//! segment index + cluster state (record payloads already live in sealed
//! segment files). A crash *during* a checkpoint can neither duplicate
//! replayed ops into a snapshot that already contains them nor leave a
//! torn manifest behind. The WAL's [`FsyncPolicy`] decides what a
//! machine crash (as opposed to a process kill) can lose.

use crate::http::{render_response, render_response_typed, Request};
use crate::net::Reactor;
use crate::obs::{Endpoint, Logger, ObsConfig, Stage, Telemetry, Trace, BUILD_VERSION};
use crate::shard::ShardedEntityStore;
use crate::sync::{lock_unpoisoned, LockClass, OrderedMutex, OrderedReadGuard, OrderedWriteGuard};
use crate::wal::{FsyncPolicy, Wal, WalOp};
use multiem_embed::EmbeddingModel;
use multiem_online::{DiskStorageConfig, OnlineConfig, OnlineError, SnapshotFormat, StorageConfig};
use multiem_table::{EntityId, Record, Schema, Value as AttrValue};
use rayon::ThreadPool;
use serde::{Serialize, Value};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything that can go wrong while building or operating the service.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid serving configuration.
    Config(String),
    /// Filesystem / network error.
    Io(io::Error),
    /// Error bubbled up from the entity store.
    Store(OnlineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<OnlineError> for ServeError {
    fn from(e: OnlineError) -> Self {
        ServeError::Store(e)
    }
}

/// Record-storage backend of the served shards (`--storage mem|disk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageBackend {
    /// Fully resident record storage (the default).
    Memory,
    /// Spill-to-disk segment storage under `<data_dir>/segments/shard-NNN`.
    /// Requires a data dir; checkpoints of disk-backed shards are deltas
    /// (segment index + cluster state, no record payloads).
    Disk,
}

impl StorageBackend {
    /// Parse a `--storage` CLI value (`mem` or `disk`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "mem" | "memory" => Ok(StorageBackend::Memory),
            "disk" => Ok(StorageBackend::Disk),
            other => Err(format!(
                "unknown storage backend `{other}` (expected mem or disk)"
            )),
        }
    }
}

/// Configuration of a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of hash-partitioned store shards.
    pub shards: usize,
    /// Worker threads executing parsed requests (the compute pool — no
    /// longer tied to connection count).
    pub workers: usize,
    /// I/O event-loop threads, each multiplexing many nonblocking
    /// connections (the reactor).
    pub io_threads: usize,
    /// Attribute names of the served schema (positional).
    pub attributes: Vec<String>,
    /// Store configuration shared by every shard. The selection strategy
    /// must be data-free (`Fixed` / `AllAttributes`).
    pub online: OnlineConfig,
    /// Durability directory (WAL + checkpoints). `None` serves from memory
    /// only.
    pub data_dir: Option<PathBuf>,
    /// Checkpoint encoding.
    pub snapshot_format: SnapshotFormat,
    /// Where ingested records live ([`StorageBackend::Disk`] needs
    /// `data_dir`).
    pub storage: StorageBackend,
    /// WAL fsync policy (ignored without a data dir).
    pub fsync: FsyncPolicy,
    /// Per-shard bound on records admitted but not yet applied: `POST
    /// /records` answers `429` with `Retry-After` when a target shard is
    /// full. `0` rejects every write (useful for drain/maintenance).
    pub queue_depth: u64,
    /// Match micro-batching: how long the first request of a batch waits
    /// for company, in microseconds (`--batch-window-us`). `0` disables
    /// coalescing — every match runs its own fan-out, exactly the pre-batch
    /// behavior.
    pub batch_window_us: u64,
    /// Upper bound on concurrent match requests coalesced into one fan-out
    /// (`--batch-max`); a batch that fills flushes immediately without
    /// waiting out the window. `<= 1` disables coalescing.
    pub batch_max: usize,
    /// Observability: metrics, tracing and structured logging (see
    /// [`ObsConfig`]).
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let online = OnlineConfig::new(multiem_core::MultiEmConfig {
            m: 0.35,
            ..multiem_core::MultiEmConfig::default()
        })
        .with_all_attributes();
        Self {
            shards: 4,
            workers: 4,
            io_threads: 2,
            attributes: vec!["title".to_string()],
            online,
            data_dir: None,
            snapshot_format: SnapshotFormat::Binary,
            storage: StorageBackend::Memory,
            fsync: FsyncPolicy::default(),
            queue_depth: 4096,
            batch_window_us: 0,
            batch_max: 64,
            obs: ObsConfig::default(),
        }
    }
}

struct ServerState<E: EmbeddingModel> {
    store: ShardedEntityStore<E>,
    /// One WAL per shard (same index), present in durable mode. Lock order
    /// is always `shard i write lock → wals[i]`; the checkpoint takes every
    /// shard lock (ascending) before any WAL lock. The [`OrderedMutex`]
    /// enforces that order dynamically in debug builds (see [`crate::sync`]).
    wals: Option<Vec<OrderedMutex<Wal>>>,
    /// Checkpoint epoch: WAL files are named by it, and the manifest names
    /// the only epoch that is ever loaded. Mutated only under all shard +
    /// WAL locks (the checkpoint).
    epoch: AtomicU64,
    /// Per-shard epoch of the latest persisted snapshot (0 = never
    /// snapshotted). Delta checkpoints only advance the entries of shards
    /// that changed; the manifest records the whole vector.
    shard_epochs: Mutex<Vec<u64>>,
    /// Per-shard count of applied writes (replayed WAL ops count too) —
    /// compared against `checkpoint_seq` to decide which shards a delta
    /// checkpoint must re-snapshot.
    write_seq: Vec<AtomicU64>,
    /// `write_seq` as of the last checkpoint (guarded by the checkpoint's
    /// all-locks critical section).
    checkpoint_seq: Mutex<Vec<u64>>,
    /// Per-shard records admitted to ingestion but not yet applied; bounded
    /// by `queue_depth` (backpressure).
    inflight: Vec<AtomicU64>,
    queue_depth: u64,
    /// `/readyz` degrades past this total ingest backlog (0 = disabled).
    ready_max_backlog: u64,
    /// `/readyz` degrades past this windowed p99 fsync latency in
    /// milliseconds (0 = disabled).
    ready_max_fsync_ms: u64,
    /// Records refused with `429 Too Many Requests` since startup.
    rejected: AtomicU64,
    /// Per-shard records *applied* through the HTTP ingest path since
    /// startup (WAL replay excluded) — the counter behind the adaptive
    /// `Retry-After` on 429s.
    drained: Vec<AtomicU64>,
    /// Per-shard windowed drain-rate estimates (sampled on 429s, so a
    /// long-idle stretch skews at most the first refusal of a burst).
    drain_windows: Vec<Mutex<DrainWindow>>,
    /// Per-shard WAL size, published after every append/checkpoint so
    /// `/stats` never touches a WAL lock (appends hold it through fsyncs).
    wal_bytes: Vec<AtomicU64>,
    /// Configured record-storage backend (lock-free copy for `/healthz`
    /// and for sizing the checkpoint's lock acquisition).
    storage: StorageBackend,
    data_dir: Option<PathBuf>,
    snapshot_format: SnapshotFormat,
    attributes: Vec<String>,
    /// Match micro-batch coalescer, present when batching is enabled
    /// (`batch_window_us > 0 && batch_max > 1`). `None` keeps the direct
    /// one-request-one-fan-out path byte-for-byte.
    batcher: Option<MatchBatcher>,
    requests: AtomicU64,
    /// Metrics registry + logger + tracer (`GET /metrics`, the access log,
    /// sampled traces). Recording is atomics; scraping takes only the
    /// registry's own mutex.
    telemetry: Telemetry,
    /// Set to begin a graceful shutdown (shared with the reactor and the
    /// `POST /admin/shutdown` route).
    shutdown: Arc<AtomicBool>,
    /// Bound address (the shutdown route self-connects to unblock the
    /// acceptor).
    addr: SocketAddr,
}

/// The serving layer: a sharded store, a WAL, and an event-driven HTTP
/// front end ([`crate::net`]).
pub struct MatchServer<E: EmbeddingModel> {
    state: Arc<ServerState<E>>,
    listener: TcpListener,
    io_threads: usize,
    pool: Arc<ThreadPool>,
}

/// Handle of a server spawned on a background thread. Dropping it (or
/// calling [`ServerHandle::shutdown`]) begins a graceful shutdown — stop
/// accepting, drain in-flight requests (bounded by
/// [`crate::net::DRAIN_DEADLINE`]), flush WALs — and joins the server
/// thread. Acknowledged writes always survive.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stop: no new connections, drain in-flight requests,
    /// flush WALs, join the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop (the event loops notice the flag at
        // their next poll tick).
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn wal_path(dir: &Path, shard: usize, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{shard:03}-{epoch:06}.log"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.json")
}

fn snapshot_path(dir: &Path, shard: usize, epoch: u64) -> PathBuf {
    dir.join(format!("shard-{shard:03}-{epoch:06}.snap"))
}

/// Atomically publish `bytes` at `path` via a temp file + fsync + rename, so
/// a crash mid-write can never leave a torn file under the final name. The
/// `sync_all` before the rename matters: without it the rename can become
/// durable *before* the file contents, and a power cut would commit a
/// manifest or snapshot full of zeros.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

impl<E: EmbeddingModel + Clone + 'static> MatchServer<E> {
    /// Build the store (restoring any checkpoint and replaying the WAL when
    /// `config.data_dir` is set) and bind the listener. Pass port `0` to let
    /// the OS pick one.
    pub fn bind(config: ServeConfig, encoder: E, addr: &str) -> Result<Self, ServeError> {
        if config.attributes.is_empty() {
            return Err(ServeError::Config(
                "schema needs at least one attribute".into(),
            ));
        }
        let schema = Schema::new(config.attributes.iter().map(String::as_str)).shared();
        // Telemetry comes up first so restore/replay warnings already go
        // through the structured logger (and a bad --log-file/--access-log
        // path fails startup, not the first request).
        let telemetry = Telemetry::new(&config.obs)?;

        // Resolve the storage backend into the per-shard store config (the
        // sharded store gives each shard its own segment subdirectory).
        let mut config = config;
        match (config.storage, &config.data_dir) {
            (StorageBackend::Memory, _) => {}
            (StorageBackend::Disk, None) => {
                return Err(ServeError::Config(
                    "disk storage needs --data-dir (segments live under it)".into(),
                ));
            }
            (StorageBackend::Disk, Some(dir)) => {
                // Segments live under the data dir; keep any caller-tuned
                // segment/cache sizes, override only the directory.
                let segments_dir = dir.join("segments").display().to_string();
                config.online.storage = match config.online.storage {
                    StorageConfig::Disk(mut disk) => {
                        disk.dir = segments_dir;
                        StorageConfig::Disk(disk)
                    }
                    StorageConfig::Memory => {
                        StorageConfig::Disk(DiskStorageConfig::new(segments_dir))
                    }
                };
            }
        }

        let mut wals = None;
        let mut epoch = 0u64;
        let mut shard_epochs = vec![0u64; config.shards];
        let mut replayed = vec![0u64; config.shards];
        let store = match &config.data_dir {
            None => ShardedEntityStore::new(
                config.online.clone(),
                schema.clone(),
                config.shards,
                encoder,
            )?,
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let (store, checkpoint_epoch, epochs) =
                    restore_or_create(&config, schema.clone(), dir, encoder, &telemetry.logger)?;
                epoch = checkpoint_epoch;
                shard_epochs = epochs;
                replayed = vec![0u64; store.num_shards()];
                // One WAL per shard; replay each shard's surviving ops in
                // its own order (shards are independent, so cross-shard
                // interleaving does not matter).
                let mut logs = Vec::with_capacity(store.num_shards());
                for (shard, dirtied) in replayed.iter_mut().enumerate() {
                    let (log, recovery) =
                        Wal::open_with(&wal_path(dir, shard, epoch), config.fsync)?;
                    if recovery.torn_tail {
                        telemetry
                            .logger
                            .warn("wal_torn_tail", &[("shard", Value::UInt(shard as u64))]);
                    }
                    for op in recovery.ops {
                        match op {
                            WalOp::Insert(record) => {
                                store.insert(record).map_err(|e| {
                                    ServeError::Config(format!(
                                        "WAL replay failed ({e}); the log was written under \
                                         a different schema or store configuration"
                                    ))
                                })?;
                            }
                            WalOp::Delete(entity) => {
                                // Idempotent: replaying a delete of an id a
                                // snapshot already dropped is a no-op.
                                store
                                    .write_shard(shard)
                                    .delete_record(entity)
                                    .map_err(|e| {
                                        ServeError::Config(format!("WAL delete replay failed: {e}"))
                                    })?;
                            }
                        }
                        // Replayed ops dirty their shard: the next delta
                        // checkpoint must re-snapshot it.
                        *dirtied += 1;
                    }
                    logs.push(OrderedMutex::new(LockClass::Wal, log));
                }
                wals = Some(logs);
                store
            }
        };

        let num_shards = store.num_shards();
        // The sharded store clamps shard counts (and a checkpoint pins its
        // own); size the per-shard bookkeeping off the real count.
        shard_epochs.resize(num_shards, 0);
        replayed.resize(num_shards, 0);
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let wal_bytes = match &wals {
            Some(wals) => wals
                .iter()
                .map(|wal| AtomicU64::new(wal.lock().bytes()))
                .collect(),
            None => (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        };
        let pool = Arc::new(ThreadPool::new(config.workers.max(1)));
        Ok(Self {
            state: Arc::new(ServerState {
                store,
                wals,
                epoch: AtomicU64::new(epoch),
                shard_epochs: Mutex::new(shard_epochs),
                write_seq: replayed.iter().map(|&n| AtomicU64::new(n)).collect(),
                checkpoint_seq: Mutex::new(vec![0u64; num_shards]),
                inflight: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
                queue_depth: config.queue_depth,
                ready_max_backlog: config.obs.ready_max_backlog,
                ready_max_fsync_ms: config.obs.ready_max_fsync_ms,
                rejected: AtomicU64::new(0),
                drained: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
                drain_windows: (0..num_shards)
                    .map(|_| Mutex::new(DrainWindow::new()))
                    .collect(),
                wal_bytes,
                storage: config.storage,
                data_dir: config.data_dir.clone(),
                snapshot_format: config.snapshot_format,
                attributes: config.attributes.clone(),
                batcher: MatchBatcher::new(
                    config.batch_window_us,
                    config.batch_max,
                    config.workers,
                ),
                requests: AtomicU64::new(0),
                telemetry,
                shutdown: Arc::new(AtomicBool::new(false)),
                addr: bound,
            }),
            listener,
            io_threads: config.io_threads.max(1),
            pool,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a shutdown is signalled (`POST /admin/shutdown`, or the
    /// flag a [`ServerHandle`] sets), then drain in-flight requests and
    /// flush the WALs. The CLI entry point: returning `Ok` means a clean
    /// exit 0.
    pub fn run(self) -> io::Result<()> {
        let state = Arc::clone(&self.state);
        let shutdown = Arc::clone(&state.shutdown);

        state.telemetry.logger.info(
            "startup",
            &[
                ("addr", Value::Str(state.addr.to_string())),
                ("shards", Value::UInt(state.store.num_shards() as u64)),
                ("durable", Value::Bool(state.wals.is_some())),
                ("version", Value::Str(BUILD_VERSION.into())),
            ],
        );

        let handler_state = Arc::clone(&state);
        let handler = Arc::new(
            move |request: Request, dispatched: Instant| -> (Vec<u8>, bool) {
                let entered = Instant::now();
                // relaxed-ok: standalone request counter, no ordering with other state
                handler_state.requests.fetch_add(1, Ordering::Relaxed);
                let mut trace = handler_state.telemetry.tracer.start();
                trace.add(Stage::Parse, request.parse_ns);
                let queue_ns = entered.saturating_duration_since(dispatched).as_nanos();
                trace.add(Stage::QueueWait, queue_ns.min(u128::from(u64::MAX)) as u64);
                let close = request.close;
                let response = route(&handler_state, &request, &mut trace);
                let status = response.status;
                let bytes = response.render(close);
                // End-to-end latency = parse + queue wait + worker execution
                // (the same wall-clock sum the trace's spans decompose).
                let executed = entered.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let total_ns = request
                    .parse_ns
                    .saturating_add(trace.get(Stage::QueueWait))
                    .saturating_add(executed);
                handler_state.telemetry.finish_request(
                    &request.method,
                    &request.path,
                    Endpoint::of(&request.method, &request.path),
                    status,
                    bytes.len() as u64,
                    total_ns,
                    &mut trace,
                );
                (bytes, close)
            },
        );

        // Probes, the metrics scrape, and the `/debug/*` introspection
        // surface are answered inline on the I/O threads: they take no
        // shard or WAL locks, so they stay green even when every worker is
        // busy or a checkpoint holds the store. Fast-path requests count
        // toward `multiem_requests_total` but not the duration histograms —
        // those cover exactly the worker path.
        let fast_state = Arc::clone(&state);
        let fast = Arc::new(move |request: &Request| -> Option<(Vec<u8>, bool)> {
            const JSON: &str = "application/json";
            let (status, reason, body, content_type) =
                match (request.method.as_str(), request.path.as_str()) {
                    ("GET", "/healthz") => (200, "OK", healthz(&fast_state), JSON),
                    ("GET", "/readyz") => {
                        let (ready, body) = readyz(&fast_state);
                        if ready {
                            (200, "OK", body, JSON)
                        } else {
                            (503, "Service Unavailable", body, JSON)
                        }
                    }
                    ("GET", "/stats") => (200, "OK", stats(&fast_state), JSON),
                    ("GET", "/metrics") => (
                        200,
                        "OK",
                        metrics_scrape(&fast_state),
                        "text/plain; version=0.0.4; charset=utf-8",
                    ),
                    ("GET", "/debug/window") => (200, "OK", debug_window(&fast_state), JSON),
                    ("GET", "/debug/top") => (200, "OK", debug_top(&fast_state), JSON),
                    ("GET", "/debug/slow") => (200, "OK", debug_slow(&fast_state), JSON),
                    ("GET", "/debug/storage") => (200, "OK", debug_storage(&fast_state), JSON),
                    _ => return None,
                };
            // relaxed-ok: standalone request counter, no ordering with other state
            fast_state.requests.fetch_add(1, Ordering::Relaxed);
            fast_state
                .telemetry
                .metrics
                .count_request(Endpoint::of(&request.method, &request.path), status);
            Some((
                render_response_typed(status, reason, content_type, &body, request.close, &[]),
                request.close,
            ))
        });

        let reactor = Reactor::start(
            self.listener,
            self.io_threads,
            Arc::clone(&self.pool),
            handler,
            fast,
            Arc::clone(&shutdown),
            state.telemetry.net_metrics(),
        )?;
        // Blocks until shutdown is signalled and in-flight work drains.
        reactor.join();
        drop(self.pool); // joins any worker still finishing an abandoned job

        // Make everything acknowledged durable before exiting.
        if let Some(wals) = &state.wals {
            for wal in wals {
                let _ = wal.lock().sync();
            }
        }
        Ok(())
    }

    /// Serve on a background thread; the handle gracefully shuts the
    /// server down.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.state.shutdown);
        let thread = std::thread::Builder::new()
            .name("multiem-serve".into())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Load the store named by `MANIFEST.json` (the manifest is the only source
/// of truth — files from interrupted checkpoints of other epochs are
/// ignored), or create a fresh one at epoch 0 when no manifest exists.
/// Returns the store, the manifest (WAL) epoch, and the per-shard snapshot
/// epochs (`shard_epochs[i] == 0` means shard `i` was never snapshotted and
/// restores empty — delta checkpoints skip untouched shards).
fn restore_or_create<E: EmbeddingModel + Clone>(
    config: &ServeConfig,
    schema: Arc<Schema>,
    dir: &Path,
    encoder: E,
    logger: &Logger,
) -> Result<(ShardedEntityStore<E>, u64, Vec<u64>), ServeError> {
    let manifest = manifest_path(dir);
    if !manifest.exists() {
        let store = ShardedEntityStore::new(config.online.clone(), schema, config.shards, encoder)?;
        let shards = store.num_shards();
        return Ok((store, 0, vec![0; shards]));
    }
    let text = std::fs::read_to_string(&manifest)?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| ServeError::Config(format!("unreadable MANIFEST.json: {e}")))?;
    let shards = field(&value, "shards")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServeError::Config("MANIFEST.json lacks `shards`".into()))?
        as usize;
    let epoch = field(&value, "epoch")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServeError::Config("MANIFEST.json lacks `epoch`".into()))?;
    let attributes: Vec<String> = field(&value, "attributes")
        .and_then(Value::as_seq)
        .map(|seq| {
            seq.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    if !attributes.is_empty() && attributes != config.attributes {
        return Err(ServeError::Config(format!(
            "checkpoint schema {attributes:?} differs from configured {:?}",
            config.attributes
        )));
    }
    if shards != config.shards {
        logger.warn(
            "checkpoint_shard_override",
            &[
                ("checkpoint_shards", Value::UInt(shards as u64)),
                ("configured_shards", Value::UInt(config.shards as u64)),
            ],
        );
    }
    // Per-shard snapshot epochs (pre-delta manifests lack the field: every
    // shard was written at the manifest epoch).
    let shard_epochs: Vec<u64> = field(&value, "shard_epochs")
        .and_then(Value::as_seq)
        .map(|seq| seq.iter().filter_map(Value::as_u64).collect())
        .unwrap_or_else(|| vec![epoch; shards]);
    if shard_epochs.len() != shards {
        return Err(ServeError::Config(format!(
            "MANIFEST.json lists {} shard epochs for {shards} shards",
            shard_epochs.len()
        )));
    }
    let snapshots: Vec<Option<Vec<u8>>> = shard_epochs
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            if e == 0 {
                Ok(None)
            } else {
                std::fs::read(snapshot_path(dir, i, e)).map(Some)
            }
        })
        .collect::<io::Result<_>>()?;
    let store = ShardedEntityStore::restore(config.online.clone(), schema, &snapshots, encoder)?;
    Ok((store, epoch, shard_epochs))
}

// --------------------------------------------------------------------------
// Routing (executed on the worker pool; `net.rs` owns all socket I/O)
// --------------------------------------------------------------------------

/// One routed response (status line, JSON body, optional `Retry-After`).
struct Response {
    status: u16,
    reason: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Response {
    fn new(status: u16, reason: &'static str, body: String) -> Self {
        Self {
            status,
            reason,
            body,
            retry_after: None,
        }
    }

    /// On-wire bytes of this response.
    fn render(&self, close: bool) -> Vec<u8> {
        let mut extra: Vec<(&str, String)> = Vec::new();
        if let Some(seconds) = self.retry_after {
            extra.push(("Retry-After", seconds.to_string()));
        }
        render_response(self.status, self.reason, &self.body, close, &extra)
    }
}

fn route<E: EmbeddingModel>(
    state: &ServerState<E>,
    request: &Request,
    trace: &mut Trace,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        // The reactor normally intercepts these read-only routes on its
        // inline fast path (see `run`); the arms stay as the single source
        // of the route table in case the front-end wiring ever changes, and
        // call the same renderers.
        ("GET", "/healthz") => Response::new(200, "OK", healthz(state)),
        ("GET", "/readyz") => {
            let (ready, body) = readyz(state);
            if ready {
                Response::new(200, "OK", body)
            } else {
                Response::new(503, "Service Unavailable", body)
            }
        }
        ("GET", "/stats") => Response::new(200, "OK", stats(state)),
        ("GET", "/metrics") => Response::new(200, "OK", metrics_scrape(state)),
        ("GET", "/debug/window") => Response::new(200, "OK", debug_window(state)),
        ("GET", "/debug/top") => Response::new(200, "OK", debug_top(state)),
        ("GET", "/debug/slow") => Response::new(200, "OK", debug_slow(state)),
        ("GET", "/debug/storage") => Response::new(200, "OK", debug_storage(state)),
        ("POST", "/admin/shutdown") => {
            // Begin the graceful drain: the reactor stops parsing new
            // requests, finishes in-flight ones (this response included),
            // then `run` flushes the WALs and returns cleanly. The
            // self-connect unblocks the acceptor thread.
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(state.addr);
            Response::new(
                200,
                "OK",
                render(Value::Map(vec![(
                    "shutting_down".into(),
                    Value::Bool(true),
                )])),
            )
        }
        ("POST", "/records") => match ingest(state, &request.body, trace) {
            Ok(body) => Response::new(200, "OK", body),
            Err(IngestError::Invalid(msg)) => Response::new(400, "Bad Request", error_body(&msg)),
            Err(IngestError::Overloaded {
                rejected,
                retry_after,
            }) => Response {
                status: 429,
                reason: "Too Many Requests",
                body: render(Value::Map(vec![
                    (
                        "error".into(),
                        Value::Str("ingest queue full; retry later".into()),
                    ),
                    ("rejected".into(), Value::UInt(rejected)),
                    ("retry_after".into(), Value::UInt(retry_after)),
                ])),
                retry_after: Some(retry_after),
            },
        },
        ("POST", "/records/delete") => match delete_batch(state, &request.body, trace) {
            Ok(body) => Response::new(200, "OK", body),
            Err(DeleteError::Invalid(msg)) => Response::new(400, "Bad Request", error_body(&msg)),
            Err(DeleteError::Internal(msg)) => {
                Response::new(500, "Internal Server Error", error_body(&msg))
            }
        },
        ("DELETE", path) if path.starts_with("/records/") => {
            match parse_record_id(&path["/records/".len()..]) {
                Some(id) => match delete_one(state, id, trace) {
                    Ok(true) => Response::new(
                        200,
                        "OK",
                        render(Value::Map(vec![("deleted".into(), Value::Bool(true))])),
                    ),
                    Ok(false) => Response::new(
                        404,
                        "Not Found",
                        error_body("unknown or already-deleted record"),
                    ),
                    Err(msg) => Response::new(500, "Internal Server Error", error_body(&msg)),
                },
                None => Response::new(
                    400,
                    "Bad Request",
                    error_body("record id must be shard-source-row (e.g. /records/0-1-42)"),
                ),
            }
        }
        ("POST", "/match") => match match_one(state, &request.body, trace) {
            Ok(body) => Response::new(200, "OK", body),
            Err(msg) => Response::new(400, "Bad Request", error_body(&msg)),
        },
        ("POST", "/snapshot") => match checkpoint(state) {
            Ok(body) => Response::new(200, "OK", body),
            Err(ServeError::Config(msg)) => Response::new(400, "Bad Request", error_body(&msg)),
            Err(e) => Response::new(500, "Internal Server Error", error_body(&e.to_string())),
        },
        ("GET" | "POST" | "DELETE", _) => {
            Response::new(404, "Not Found", error_body("no such route"))
        }
        _ => Response::new(405, "Method Not Allowed", error_body("unsupported method")),
    }
}

/// Parse a `{shard}-{source}-{row}` record id (the triple `POST /records`
/// returns for every ingested record).
fn parse_record_id(text: &str) -> Option<crate::shard::GlobalEntityId> {
    let mut parts = text.split('-');
    let shard: u32 = parts.next()?.parse().ok()?;
    let source: u32 = parts.next()?.parse().ok()?;
    let row: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(crate::shard::GlobalEntityId {
        shard,
        entity: EntityId::new(source, row),
    })
}

/// Apply one deletion: WAL-append first (the op must survive a crash that
/// happens mid-apply), then detach the record under the shard's write lock.
/// Same `shard → wal` lock order as ingestion. A delete of an unknown id
/// still logs — replaying it is a no-op, and the log stays a faithful
/// record of what was requested.
fn delete_one<E: EmbeddingModel>(
    state: &ServerState<E>,
    id: crate::shard::GlobalEntityId,
    trace: &mut Trace,
) -> Result<bool, String> {
    let shard = id.shard as usize;
    if shard >= state.store.num_shards() {
        return Ok(false);
    }
    let mut guard = state.store.write_shard(shard);
    if let Some(wals) = &state.wals {
        let mut wal = wals[shard].lock();
        let timing = wal
            .append_timed(&WalOp::Delete(id.entity))
            .map_err(|e| format!("wal append failed: {e}"))?;
        // relaxed-ok: published size for lock-free /stats; staleness is benign
        state.wal_bytes[shard].store(wal.bytes(), Ordering::Relaxed);
        record_wal_timing(state, trace, &timing);
    }
    let apply_started = Instant::now();
    let deleted = guard.delete_record(id.entity).map_err(|e| e.to_string())?;
    trace.add(Stage::Apply, elapsed_ns(apply_started));
    if deleted {
        state.write_seq[shard].fetch_add(1, Ordering::SeqCst);
        state.telemetry.metrics.deleted_records.inc();
    }
    Ok(deleted)
}

/// Fold one WAL append's timing into the request trace and the WAL
/// counters (`wal_append` excludes the fsync portion; `fsync` gets it).
fn record_wal_timing<E: EmbeddingModel>(
    state: &ServerState<E>,
    trace: &mut Trace,
    timing: &crate::wal::AppendTiming,
) {
    trace.add(
        Stage::WalAppend,
        timing.total_ns.saturating_sub(timing.fsync_ns),
    );
    trace.add(Stage::Fsync, timing.fsync_ns);
    let metrics = &state.telemetry.metrics;
    metrics.wal_appended_bytes.add(timing.appended_bytes);
    if timing.fsynced {
        metrics.wal_fsyncs.inc();
        // The rolling fsync window is the `/readyz` degradation signal.
        state.telemetry.record_fsync_window(timing.fsync_ns);
    }
}

/// Nanoseconds since `started`, saturated into a `u64`.
fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Why `POST /records/delete` failed.
enum DeleteError {
    /// Malformed body (`400`).
    Invalid(String),
    /// A WAL or store failure mid-batch (`500` — already-applied deletions
    /// stand, and retrying the batch is safe because deletion is
    /// idempotent).
    Internal(String),
}

/// `POST /records/delete`: batch deletion of `{"ids": [[shard, source,
/// row], ...]}` triples. Per-id outcomes come back positionally; unknown or
/// repeated ids report `false` rather than failing the batch.
fn delete_batch<E: EmbeddingModel>(
    state: &ServerState<E>,
    body: &[u8],
    trace: &mut Trace,
) -> Result<String, DeleteError> {
    let value = parse_body(body).map_err(DeleteError::Invalid)?;
    let ids = field(&value, "ids")
        .and_then(Value::as_seq)
        .ok_or_else(|| {
            DeleteError::Invalid("body must be {\"ids\": [[shard, source, row], ...]}".into())
        })?;
    let mut parsed = Vec::with_capacity(ids.len());
    for (i, item) in ids.iter().enumerate() {
        let triple = item
            .as_seq()
            .filter(|seq| seq.len() == 3)
            .and_then(|seq| {
                let shard = seq[0].as_u64()? as u32;
                let source = seq[1].as_u64()? as u32;
                let row = seq[2].as_u64()? as u32;
                Some(crate::shard::GlobalEntityId {
                    shard,
                    entity: EntityId::new(source, row),
                })
            })
            .ok_or_else(|| {
                DeleteError::Invalid(format!("ids[{i}] must be a [shard, source, row] triple"))
            })?;
        parsed.push(triple);
    }
    let mut deleted = 0u64;
    let mut missing = 0u64;
    let mut results = Vec::with_capacity(parsed.len());
    for id in parsed {
        let ok = delete_one(state, id, trace).map_err(DeleteError::Internal)?;
        if ok {
            deleted += 1;
        } else {
            missing += 1;
        }
        results.push(Value::Bool(ok));
    }
    Ok(render(Value::Map(vec![
        ("deleted".into(), Value::UInt(deleted)),
        ("missing".into(), Value::UInt(missing)),
        ("results".into(), Value::Seq(results)),
    ])))
}

// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn healthz<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    render(Value::Map(vec![
        ("status".into(), Value::Str("ok".into())),
        (
            "shards".into(),
            Value::UInt(state.store.num_shards() as u64),
        ),
        ("durable".into(), Value::Bool(state.wals.is_some())),
        // Config-derived, deliberately lock-free: the liveness probe must
        // answer even while a checkpoint holds every shard lock.
        (
            "storage".into(),
            Value::Str(
                match state.storage {
                    StorageBackend::Memory => "memory",
                    StorageBackend::Disk => "disk",
                }
                .into(),
            ),
        ),
        (
            "uptime_seconds".into(),
            Value::Float(state.telemetry.uptime_seconds()),
        ),
        ("version".into(), Value::Str(BUILD_VERSION.into())),
        (
            "checkpoint_epoch".into(),
            Value::UInt(state.epoch.load(Ordering::SeqCst)),
        ),
    ]))
}

/// The degradation rule behind `GET /readyz`: which configured thresholds
/// the current signals cross (`0` disables a threshold). Empty = ready.
/// Pure so the rule is unit-testable without a server.
fn degraded_reasons(
    backlog: u64,
    max_backlog: u64,
    fsync_p99_ms: f64,
    max_fsync_ms: u64,
) -> Vec<&'static str> {
    let mut reasons = Vec::new();
    if max_backlog > 0 && backlog > max_backlog {
        reasons.push("ingest backlog above --ready-max-backlog");
    }
    if max_fsync_ms > 0 && fsync_p99_ms > max_fsync_ms as f64 {
        reasons.push("windowed fsync p99 above --ready-max-fsync-ms");
    }
    reasons
}

/// Render `GET /readyz`: readiness as distinct from liveness. `/healthz`
/// answers "is the process up"; this answers "should a load balancer send
/// traffic here" — `false` (a 503 from the caller) when the ingest backlog
/// or the rolling-window p99 fsync latency crosses its configured
/// threshold. Lock-free like every fast-path route: the backlog reads the
/// admission atomics, the fsync signal reads the analytics window.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn readyz<E: EmbeddingModel>(state: &ServerState<E>) -> (bool, String) {
    let backlog: u64 = state
        .inflight
        .iter()
        .map(|n| n.load(Ordering::SeqCst))
        .sum();
    let fsync_p99_ms = state
        .telemetry
        .analytics
        .as_ref()
        .map(|a| a.windows.fsync_window().quantile_ms(0.99))
        .unwrap_or(0.0);
    let reasons = degraded_reasons(
        backlog,
        state.ready_max_backlog,
        fsync_p99_ms,
        state.ready_max_fsync_ms,
    );
    let ready = reasons.is_empty();
    let body = render(Value::Map(vec![
        (
            "status".into(),
            Value::Str(if ready { "ready" } else { "degraded" }.into()),
        ),
        ("backlog".into(), Value::UInt(backlog)),
        ("max_backlog".into(), Value::UInt(state.ready_max_backlog)),
        ("fsync_window_p99_ms".into(), Value::Float(fsync_p99_ms)),
        ("max_fsync_ms".into(), Value::UInt(state.ready_max_fsync_ms)),
        (
            "reasons".into(),
            Value::Seq(reasons.into_iter().map(|r| Value::Str(r.into())).collect()),
        ),
    ]));
    (ready, body)
}

/// The `{"enabled": false}` body every `/debug/*` route answers when the
/// analytics layer is off (`--no-telemetry` or `--window-secs 0`).
fn analytics_disabled() -> String {
    render(Value::Map(vec![("enabled".into(), Value::Bool(false))]))
}

/// Render `GET /debug/window`: per-endpoint request rates and latency
/// quantiles over the rolling window, plus the windowed fsync latency.
/// Endpoints with no traffic inside the window are omitted. The raw
/// nanosecond quantiles ride along so machine consumers (the integration
/// tests, `obstop`) need not re-derive them from the millisecond floats.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn debug_window<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    let Some(analytics) = &state.telemetry.analytics else {
        return analytics_disabled();
    };
    let windows = &analytics.windows;
    let mut endpoints = Vec::new();
    for endpoint in Endpoint::ALL {
        let snap = windows.endpoint_window(endpoint);
        if snap.count() == 0 {
            continue;
        }
        endpoints.push(Value::Map(vec![
            ("endpoint".into(), Value::Str(endpoint.name().into())),
            ("count".into(), Value::UInt(snap.count())),
            ("rate_rps".into(), Value::Float(windows.rate(snap.count()))),
            ("p50_ms".into(), Value::Float(snap.quantile_ms(0.5))),
            ("p99_ms".into(), Value::Float(snap.quantile_ms(0.99))),
            (
                "p50_ns".into(),
                Value::UInt(snap.quantile(0.5).unwrap_or(0)),
            ),
            (
                "p99_ns".into(),
                Value::UInt(snap.quantile(0.99).unwrap_or(0)),
            ),
        ]));
    }
    let fsync = windows.fsync_window();
    // Batch occupancy is dimensionless (requests or records per executed
    // batch), so its quantiles are plain sizes, not latencies.
    let batch = windows.batch_window();
    render(Value::Map(vec![
        ("enabled".into(), Value::Bool(true)),
        ("window_secs".into(), Value::UInt(windows.window_secs())),
        ("covered_secs".into(), Value::Float(windows.covered_secs())),
        ("endpoints".into(), Value::Seq(endpoints)),
        (
            "fsync".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(fsync.count())),
                ("p50_ms".into(), Value::Float(fsync.quantile_ms(0.5))),
                ("p99_ms".into(), Value::Float(fsync.quantile_ms(0.99))),
            ]),
        ),
        (
            "batch".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(batch.count())),
                ("p50".into(), Value::UInt(batch.quantile(0.5).unwrap_or(0))),
                ("max".into(), Value::UInt(batch.quantile(1.0).unwrap_or(0))),
            ]),
        ),
    ]))
}

/// JSON rows for one heavy-hitter list.
fn hitters_value(hitters: &[crate::obs::HeavyHitter]) -> Value {
    Value::Seq(
        hitters
            .iter()
            .map(|h| {
                Value::Map(vec![
                    ("key".into(), Value::Str(h.key.clone())),
                    ("count".into(), Value::UInt(h.count)),
                    ("error".into(), Value::UInt(h.error)),
                ])
            })
            .collect(),
    )
}

/// Render `GET /debug/top`: the hottest ingest sources, routed shards, and
/// match-result entities of the current window (previous window alongside).
/// Counts come from space-saving sketches: a `count` overestimates the true
/// frequency by at most its `error`.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn debug_top<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    let Some(analytics) = &state.telemetry.analytics else {
        return analytics_disabled();
    };
    let epoch = analytics.windows.window_epoch();
    let section = |topk: &crate::obs::WindowedTopK| {
        let (current, previous) = topk.top_at(epoch);
        Value::Map(vec![
            ("current".into(), hitters_value(&current)),
            ("previous".into(), hitters_value(&previous)),
        ])
    };
    render(Value::Map(vec![
        ("enabled".into(), Value::Bool(true)),
        ("window_epoch".into(), Value::UInt(epoch)),
        ("sources".into(), section(&analytics.sources)),
        ("shards".into(), section(&analytics.shards)),
        ("entities".into(), section(&analytics.entities)),
    ]))
}

/// Render `GET /debug/slow`: the retained slow-request exemplars (current
/// window first, then the previous one, slowest first), each with its full
/// span decomposition — the request that blew the SLO, inspectable after
/// the fact without log spelunking.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn debug_slow<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    let Some(analytics) = &state.telemetry.analytics else {
        return analytics_disabled();
    };
    let exemplars = analytics
        .exemplars
        .snapshot_at(analytics.windows.window_epoch());
    let entries: Vec<Value> = exemplars
        .iter()
        .map(|e| {
            let spans: Vec<(String, Value)> = e
                .trace
                .spans()
                .map(|(stage, ns)| (stage.name().to_string(), Value::UInt(ns)))
                .collect();
            Value::Map(vec![
                ("request_id".into(), Value::UInt(e.trace.id)),
                ("method".into(), Value::Str(e.method.clone())),
                ("path".into(), Value::Str(e.path.clone())),
                ("status".into(), Value::UInt(u64::from(e.status))),
                ("total_ns".into(), Value::UInt(e.total_ns)),
                ("ts_ms".into(), Value::UInt(e.ts_ms)),
                ("fan_out".into(), Value::UInt(e.trace.fan_out_width())),
                ("spans".into(), Value::Map(spans)),
            ])
        })
        .collect();
    render(Value::Map(vec![
        ("enabled".into(), Value::Bool(true)),
        ("exemplars".into(), Value::Seq(entries)),
    ]))
}

/// Render `GET /debug/storage`: per-shard storage health — cache hit rates,
/// WAL sizes, and per-segment live ratios (what compaction will act on) —
/// plus the windowed fsync latency. Never blocks: a shard held by a writer
/// reports its published counters with its segment list omitted.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn debug_storage<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    let details = state.store.shard_storage_details();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut shards = Vec::with_capacity(details.len());
    for (i, (stats, segments)) in details.iter().enumerate() {
        cache_hits += stats.cache_hits;
        cache_misses += stats.cache_misses;
        let mut entries = match stats.to_value() {
            Value::Map(entries) => entries,
            other => vec![("stats".into(), other)],
        };
        entries.insert(0, ("shard".into(), Value::UInt(i as u64)));
        entries.push((
            "wal_bytes".into(),
            // relaxed-ok: monitoring read of a published counter
            Value::UInt(state.wal_bytes[i].load(Ordering::Relaxed)),
        ));
        entries.push((
            "segment_files".into(),
            Value::Seq(
                segments
                    .iter()
                    .map(|s| {
                        Value::Map(vec![
                            ("records".into(), Value::UInt(s.records as u64)),
                            ("dead".into(), Value::UInt(s.dead as u64)),
                            ("bytes".into(), Value::UInt(s.bytes)),
                            ("live_ratio".into(), Value::Float(s.live_ratio())),
                        ])
                    })
                    .collect(),
            ),
        ));
        shards.push(Value::Map(entries));
    }
    let looked_up = cache_hits + cache_misses;
    let hit_rate = if looked_up > 0 {
        cache_hits as f64 / looked_up as f64
    } else {
        0.0
    };
    let fsync_p99_ms = state
        .telemetry
        .analytics
        .as_ref()
        .map(|a| a.windows.fsync_window().quantile_ms(0.99))
        .unwrap_or(0.0);
    render(Value::Map(vec![
        ("cache_hits".into(), Value::UInt(cache_hits)),
        ("cache_misses".into(), Value::UInt(cache_misses)),
        ("cache_hit_rate".into(), Value::Float(hit_rate)),
        (
            "wal_bytes".into(),
            Value::UInt(
                state
                    .wal_bytes
                    .iter()
                    // relaxed-ok: monitoring read of published counters
                    .map(|bytes| bytes.load(Ordering::Relaxed))
                    .sum(),
            ),
        ),
        ("fsync_window_p99_ms".into(), Value::Float(fsync_p99_ms)),
        ("shards".into(), Value::Seq(shards)),
    ]))
}

/// Render `GET /metrics` (Prometheus text exposition). Runs on the I/O fast
/// path under the same discipline as `/stats`: gauges refresh from published
/// atomics and rendering takes only the registry's own mutex — **never** a
/// shard write lock or a WAL lock, so scrapes stay green through
/// checkpoints and write bursts.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn metrics_scrape<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    let telemetry = &state.telemetry;
    let metrics = &telemetry.metrics;
    metrics.uptime_seconds.set(telemetry.uptime_seconds());
    let wal_bytes: u64 = state
        .wal_bytes
        .iter()
        // relaxed-ok: monitoring read of published counters
        .map(|bytes| bytes.load(Ordering::Relaxed))
        .sum();
    metrics.wal_bytes.set(wal_bytes as f64);
    metrics
        .checkpoint_epoch
        .set(state.epoch.load(Ordering::SeqCst) as f64);
    let inflight: u64 = state
        .inflight
        .iter()
        .map(|n| n.load(Ordering::SeqCst))
        .sum();
    metrics.queue_inflight.set(inflight as f64);
    // Storage cache counters ride the same nonblocking per-shard pass
    // `/stats` uses; windowed rate/quantile gauges refresh from the rolling
    // analytics windows (no-op with analytics off).
    let storage = state.store.storage_stats();
    metrics.storage_cache_hits.set(storage.cache_hits as f64);
    metrics
        .storage_cache_misses
        .set(storage.cache_misses as f64);
    telemetry.refresh_window_metrics();
    telemetry.registry.render()
}

/// Render `/stats`. Runs on the I/O fast path, so it must never block on a
/// shard write lock or a WAL lock: shard stats fall back to their last
/// published value when a writer holds the shard
/// ([`ShardedEntityStore::stats`]), and WAL sizes read published atomics.
// lint:fast-path — answered inline on the I/O threads; must stay lock-free.
fn stats<E: EmbeddingModel>(state: &ServerState<E>) -> String {
    // One nonblocking pass yields both the store and the storage counters.
    let (sharded, storage) = state.store.stats_with_storage();
    let mut entries = match sharded.to_value() {
        Value::Map(entries) => entries,
        other => vec![("stats".into(), other)],
    };
    let wal_bytes = state
        .wals
        .as_ref()
        .map(|_| {
            state
                .wal_bytes
                .iter()
                // relaxed-ok: monitoring read of published counters
                .map(|bytes| bytes.load(Ordering::Relaxed))
                .sum()
        })
        .unwrap_or(0);
    entries.push(("wal_bytes".into(), Value::UInt(wal_bytes)));
    entries.push((
        "requests".into(),
        // relaxed-ok: monitoring read of a standalone counter
        Value::UInt(state.requests.load(Ordering::Relaxed)),
    ));
    // Everything below `requests` is process-local (counters reset on
    // restart, cache contents differ) — the store-state prefix above stays
    // byte-identical across a kill + WAL replay.
    entries.push((
        "rejected".into(),
        // relaxed-ok: monitoring read of a standalone counter
        Value::UInt(state.rejected.load(Ordering::Relaxed)),
    ));
    entries.push(("queue_depth".into(), Value::UInt(state.queue_depth)));
    entries.push(("storage".into(), storage.to_value()));
    render(Value::Map(entries))
}

/// A shard lock held for the duration of a checkpoint: shared for the
/// memory backend (reads keep serving), exclusive for the disk backend
/// (its storage tail is sealed under the lock).
enum ShardGuard<'a, E: EmbeddingModel> {
    Read(OrderedReadGuard<'a, multiem_online::EntityStore<E>>),
    Write(OrderedWriteGuard<'a, multiem_online::EntityStore<E>>),
}

impl<E: EmbeddingModel> ShardGuard<'_, E> {
    fn get(&self) -> &multiem_online::EntityStore<E> {
        match self {
            ShardGuard::Read(g) => g,
            ShardGuard::Write(g) => g,
        }
    }
}

/// Why `POST /records` was refused.
enum IngestError {
    /// Malformed body (`400`).
    Invalid(String),
    /// A target shard's ingest queue is full (`429` + `Retry-After`).
    Overloaded {
        /// Records turned away by this refusal.
        rejected: u64,
        /// Seconds the client should wait, derived from the rejecting
        /// shard's backlog and measured drain rate.
        retry_after: u64,
    },
}

/// Per-shard drain-rate sample: the applied-record counter at the start of
/// the current window, and the rate the last *completed* window measured.
struct DrainWindow {
    since: Instant,
    drained: u64,
    /// Records/s over the last completed window (`0.0` until one closes —
    /// conservatively treated as "no measurable drain").
    rate: f64,
}

impl DrainWindow {
    fn new() -> Self {
        Self {
            since: Instant::now(),
            drained: 0,
            rate: 0.0,
        }
    }

    /// Close the window (at >= 1 s granularity) against the current applied
    /// count and return the freshest rate estimate. Sampling happens on
    /// 429s, so under a sustained burst the estimate tracks the *current*
    /// shard throughput within about a second — a lifetime average would
    /// report hours-old rates on long-lived servers.
    fn sample(&mut self, drained_now: u64) -> f64 {
        let dt = self.since.elapsed().as_secs_f64();
        if dt >= 1.0 {
            self.rate = drained_now.saturating_sub(self.drained) as f64 / dt;
            self.since = Instant::now();
            self.drained = drained_now;
        }
        self.rate
    }
}

/// `Retry-After` seconds for a 429: how long the rejecting shard needs to
/// drain its current backlog at its recently measured ingest rate, clamped
/// to `1..=30`. A shard with no measurable drain (stalled, or no window has
/// closed yet) gets the maximum backoff instead of a hardcoded `1` that
/// would send every client straight back into the full queue.
fn derive_retry_after(backlog: u64, rate: f64) -> u64 {
    if rate <= 0.0 {
        return 30;
    }
    ((backlog as f64 / rate).ceil() as u64).clamp(1, 30)
}

/// Admission slots on the per-shard ingest queues, released on drop (also
/// on error paths, so a failed insert never leaks queue capacity).
struct QueueSlots<'a, E: EmbeddingModel> {
    state: &'a ServerState<E>,
    /// `(shard, records admitted)` pairs.
    acquired: Vec<(usize, u64)>,
}

impl<E: EmbeddingModel> Drop for QueueSlots<'_, E> {
    fn drop(&mut self) {
        for &(shard, n) in &self.acquired {
            self.state.inflight[shard].fetch_sub(n, Ordering::SeqCst);
        }
    }
}

/// Outcome of queue admission: slots, or the shard that refused the batch.
enum Admission<'a, E: EmbeddingModel> {
    /// The whole batch holds queue slots.
    Admitted(QueueSlots<'a, E>),
    /// A target shard lacked room; its backlog drives the `Retry-After`.
    Refused {
        /// The shard whose queue was full.
        shard: usize,
    },
}

/// Admit a whole batch onto its target shards' queues, or refuse the batch
/// atomically when any shard lacks room. `Err` means the batch can *never*
/// fit (a per-shard count above the queue depth): retrying it verbatim
/// would loop forever, so the caller must answer with a terminal 400
/// rather than 429 + `Retry-After`. (`queue_depth == 0` is the explicit
/// drain mode, where 429-everything is the intent.)
fn admit<'a, E: EmbeddingModel>(
    state: &'a ServerState<E>,
    records: &[Record],
) -> Result<Admission<'a, E>, String> {
    let mut per_shard: Vec<(usize, u64)> = Vec::new();
    for record in records {
        let shard = state.store.shard_of(record);
        match per_shard.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, n)) => *n += 1,
            None => per_shard.push((shard, 1)),
        }
    }
    if state.queue_depth > 0 {
        if let Some((shard, n)) = per_shard.iter().find(|(_, n)| *n > state.queue_depth) {
            return Err(format!(
                "batch routes {n} records to shard {shard}, above the ingest queue \
                 depth {}; split the batch",
                state.queue_depth
            ));
        }
    }
    let mut slots = QueueSlots {
        state,
        acquired: Vec::with_capacity(per_shard.len()),
    };
    for (shard, n) in per_shard {
        let before = state.inflight[shard].fetch_add(n, Ordering::SeqCst);
        slots.acquired.push((shard, n));
        if before + n > state.queue_depth {
            // Dropping `slots` rolls back every acquisition.
            drop(slots);
            return Ok(Admission::Refused { shard });
        }
    }
    Ok(Admission::Admitted(slots))
}

fn ingest<E: EmbeddingModel>(
    state: &ServerState<E>,
    body: &[u8],
    trace: &mut Trace,
) -> Result<String, IngestError> {
    let value = parse_body(body).map_err(IngestError::Invalid)?;
    let records = field(&value, "records")
        .and_then(Value::as_seq)
        .ok_or_else(|| IngestError::Invalid("body must be {\"records\": [[...], ...]}".into()))?;
    let arity = state.attributes.len();
    let mut parsed = Vec::with_capacity(records.len());
    for (i, item) in records.iter().enumerate() {
        let record = record_from_value(item)
            .map_err(|e| IngestError::Invalid(format!("records[{i}]: {e}")))?;
        if record.arity() != arity {
            return Err(IngestError::Invalid(format!(
                "records[{i}] has {} values, schema has {arity} attributes",
                record.arity()
            )));
        }
        parsed.push(record);
    }

    // Backpressure: the whole batch is admitted or refused before any write
    // lands, so a 429 never leaves a half-applied request behind. The slots
    // release when the request finishes (`_slots` drops on every path).
    let _slots = match admit(state, &parsed).map_err(IngestError::Invalid)? {
        Admission::Admitted(slots) => slots,
        Admission::Refused { shard } => {
            let rejected = parsed.len() as u64;
            // relaxed-ok: standalone rejection counter, no ordering with other state
            state.rejected.fetch_add(rejected, Ordering::Relaxed);
            state.telemetry.metrics.rejected_records.add(rejected);
            // relaxed-ok: the drain estimate is advisory; a stale read skews one Retry-After
            let drained_now = state.drained[shard].load(Ordering::Relaxed);
            let rate = lock_unpoisoned(&state.drain_windows[shard]).sample(drained_now);
            let backlog = state.inflight[shard].load(Ordering::SeqCst) + rejected;
            return Err(IngestError::Overloaded {
                rejected,
                retry_after: derive_retry_after(backlog, rate),
            });
        }
    };

    // Group-commit: records are grouped by target shard, and each shard's
    // group rides ONE WAL batch append (one frame run, one fsync decision)
    // followed by the applies, all under a single acquisition of that
    // shard's write lock. Per-shard order still follows request order, so
    // WAL replay reconstructs exactly the same state as per-record appends
    // — the bytes on disk are identical, there are just fewer fsyncs.
    let mut by_shard: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, record) in parsed.iter().enumerate() {
        let shard = state.store.shard_of(record);
        // Heavy-hitter analytics, before any lock: the source key is the
        // routing token, so `/debug/top` ranks what drives placement.
        if state.telemetry.analytics.is_some() {
            state
                .telemetry
                .note_source(&crate::shard::route_token(record));
            state.telemetry.note_shard(shard);
        }
        match by_shard.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, indices)) => indices.push(i),
            None => by_shard.push((shard, vec![i])),
        }
    }
    let mut parsed: Vec<Option<Record>> = parsed.into_iter().map(Some).collect();
    let mut results: Vec<Option<Value>> = (0..parsed.len()).map(|_| None).collect();
    for (shard, indices) in by_shard {
        // Lock order: shard write lock first, then that shard's WAL (see
        // module docs). Writers to different shards share nothing here.
        let mut guard = state.store.write_shard(shard);
        if let Some(wals) = &state.wals {
            // `indices` partitions `0..parsed.len()`, so every slot is still
            // `Some` here; `filter_map` keeps the path panic-free regardless.
            let ops: Vec<WalOp> = indices
                .iter()
                .filter_map(|&i| parsed[i].clone().map(WalOp::Insert))
                .collect();
            let mut wal = wals[shard].lock();
            let timing = wal
                .append_batch_timed(&ops)
                .map_err(|e| IngestError::Invalid(format!("wal append failed: {e}")))?;
            // relaxed-ok: published size for lock-free /stats; staleness is benign
            state.wal_bytes[shard].store(wal.bytes(), Ordering::Relaxed);
            record_wal_timing(state, trace, &timing);
        }
        let apply_started = Instant::now();
        let mut applied = 0u64;
        for &i in &indices {
            // Each index is visited exactly once (see above), so the slot is
            // populated; a `None` would mean a routing bug, answered as 400.
            let Some(record) = parsed[i].take() else {
                return Err(IngestError::Invalid(format!(
                    "internal routing error: records[{i}] dispatched twice"
                )));
            };
            let (gid, matched) = crate::shard::apply_insert(&mut guard, shard, record)
                .map_err(|e| IngestError::Invalid(e.to_string()))?;
            applied += 1;
            results[i] = Some(Value::Map(vec![
                ("shard".into(), Value::UInt(u64::from(gid.shard))),
                ("source".into(), Value::UInt(u64::from(gid.entity.source))),
                ("row".into(), Value::UInt(u64::from(gid.entity.row))),
                ("matched".into(), Value::Bool(matched)),
            ]));
        }
        trace.add(Stage::Apply, elapsed_ns(apply_started));
        state.write_seq[shard].fetch_add(applied, Ordering::SeqCst);
        // relaxed-ok: drain-rate sample counter; the estimate is advisory
        state.drained[shard].fetch_add(applied, Ordering::Relaxed);
        state.telemetry.metrics.ingested_records.add(applied);
        state.telemetry.record_ingest_batch(applied);
        drop(guard);
    }
    let results: Vec<Value> = results.into_iter().flatten().collect();
    Ok(render(Value::Map(vec![
        ("ingested".into(), Value::UInt(results.len() as u64)),
        ("results".into(), Value::Seq(results)),
    ])))
}

/// What one coalesced match request resolves to: its globally ranked hits
/// plus the timing breakdown attributed to it.
type MatchOutcome = (
    Vec<(crate::shard::GlobalEntityId, f32)>,
    crate::shard::MatchTiming,
);

/// One match request parked in the coalescing queue: its completion slot,
/// filled by whichever worker executes the batch.
struct MatchSlot {
    result: Mutex<Option<MatchOutcome>>,
    ready: Condvar,
}

/// The match micro-batch coalescer. Concurrent `POST /match` workers park
/// their parsed records here; the **first** request of an empty queue
/// becomes the batch leader and waits up to `window` for company (woken
/// early when the batch fills to `max`), then swaps the queue out and runs
/// one [`ShardedEntityStore::match_batch_timed`] fan-out for everyone —
/// one lock acquisition and one index pass per shard instead of one per
/// request. Followers block on their slot until the leader distributes
/// results. A request arriving while a leader executes starts the next
/// batch, so batches overlap and the queue never convoys behind a slow
/// fan-out.
struct MatchBatcher {
    window: Duration,
    max: usize,
    queue: Mutex<Vec<(Record, Arc<MatchSlot>)>>,
    /// Signalled by enqueuers when the queue fills to `max`, so the leader
    /// flushes immediately instead of sleeping out the window.
    full: Condvar,
}

impl MatchBatcher {
    /// A coalescer for the configured knobs, or `None` when they disable
    /// batching (`window == 0`, `max <= 1`, or a single-worker pool, where
    /// no two requests can ever be in flight to coalesce). The effective
    /// cap is clamped to the worker count: each parked request occupies one
    /// worker, so a batch can never hold more than `workers` requests —
    /// an uncapped `max` would just stall every leader for the full window.
    fn new(window_us: u64, max: usize, workers: usize) -> Option<Self> {
        let max = max.min(workers);
        (window_us > 0 && max > 1).then(|| Self {
            window: Duration::from_micros(window_us),
            max,
            queue: Mutex::new(Vec::new()),
            full: Condvar::new(),
        })
    }

    /// Run `record` through a coalesced fan-out, blocking until its result
    /// is available (bounded by the batch window plus one batch execution).
    fn run<E: EmbeddingModel>(
        &self,
        store: &ShardedEntityStore<E>,
        telemetry: &Telemetry,
        record: Record,
    ) -> (
        Vec<(crate::shard::GlobalEntityId, f32)>,
        crate::shard::MatchTiming,
    ) {
        let slot = Arc::new(MatchSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        // Poison-tolerant throughout: the queue and slots hold plain data
        // (Vec pushes, Option writes) that stays consistent across a
        // panicking holder, and a match worker must never panic a request.
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let leader = queue.is_empty();
        queue.push((record, Arc::clone(&slot)));
        if queue.len() >= self.max {
            self.full.notify_all();
        }
        if leader {
            let deadline = Instant::now() + self.window;
            while queue.len() < self.max {
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timeout) = self
                    .full
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let batch = std::mem::take(&mut *queue);
            drop(queue);
            let flushed_full = batch.len() >= self.max;
            telemetry.record_match_batch(batch.len() as u64, flushed_full);
            let (records, slots): (Vec<Record>, Vec<Arc<MatchSlot>>) = batch.into_iter().unzip();
            let results = store.match_batch_timed(&records);
            for (slot, result) in slots.iter().zip(results) {
                *lock_unpoisoned(&slot.result) = Some(result);
                slot.ready.notify_one();
            }
        } else {
            drop(queue);
        }
        let mut result = lock_unpoisoned(&slot.result);
        loop {
            match result.take() {
                Some(result) => return result,
                None => {
                    result = slot
                        .ready
                        .wait(result)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

fn match_one<E: EmbeddingModel>(
    state: &ServerState<E>,
    body: &[u8],
    trace: &mut Trace,
) -> Result<String, String> {
    let value = parse_body(body)?;
    let record = field(&value, "record")
        .ok_or_else(|| "body must be {\"record\": [...]}".to_string())
        .and_then(record_from_value)?;
    if record.arity() != state.attributes.len() {
        return Err(format!(
            "record has {} values, schema has {} attributes",
            record.arity(),
            state.attributes.len()
        ));
    }
    let (ranked, timing) = match &state.batcher {
        Some(batcher) => batcher.run(&state.store, &state.telemetry, record),
        None => state.store.match_record_timed(&record),
    };
    // The fan-out's wall time decomposes into the slowest shard's search
    // (the critical path), the merge, and scatter/gather coordination.
    trace.add(Stage::AnnSearch, timing.ann_max_ns);
    trace.add(Stage::RankMerge, timing.merge_ns);
    trace.add(Stage::FanOut, timing.coordination_ns());
    trace.set_fan_out_width(timing.fan_out);
    // The best match is this request's "result entity" for /debug/top.
    if let Some((gid, _)) = ranked.first() {
        state.telemetry.note_match_entity(&format!(
            "{}-{}-{}",
            gid.shard, gid.entity.source, gid.entity.row
        ));
    }
    let matches: Vec<Value> = ranked
        .into_iter()
        .map(|(gid, distance)| {
            Value::Map(vec![
                ("shard".into(), Value::UInt(u64::from(gid.shard))),
                ("source".into(), Value::UInt(u64::from(gid.entity.source))),
                ("row".into(), Value::UInt(u64::from(gid.entity.row))),
                ("distance".into(), Value::Float(f64::from(distance))),
            ])
        })
        .collect();
    Ok(render(Value::Map(vec![(
        "matches".into(),
        Value::Seq(matches),
    )])))
}

/// Delta checkpoint protocol (crash-atomic): snapshot the shards that
/// changed since the last checkpoint and start a new WAL epoch, with the
/// manifest rename as the single commit point.
///
/// 1. take every shard lock (ascending), then every WAL lock — the same
///    global order writers use, so no write interleaves. Memory-backed
///    stores take **read** locks (reads keep serving through the
///    checkpoint, as in PR 2); disk-backed stores take **write** locks
///    because dirty shards seal their storage tail here;
/// 2. for every *dirty* shard (its `write_seq` moved since the last
///    checkpoint, or it has no snapshot yet despite holding records):
///    flush its storage and write `shard-NNN-{epoch+1}.snap` (temp +
///    rename each). Clean shards keep their existing snapshot file — with
///    the disk backend even a dirty shard's snapshot is only the segment
///    index + cluster state, so the checkpoint cost tracks the delta, not
///    the store size;
/// 3. create empty `wal-NNN-{epoch+1}.log` files for **all** shards (WAL
///    truncation is keyed to the new delta epoch);
/// 4. **commit**: atomically rename the new `MANIFEST.json` naming
///    `epoch + 1` and the per-shard snapshot epochs into place;
/// 5. swap the in-memory WAL handles, best-effort delete the old epoch's
///    WALs and each re-snapshotted shard's superseded snapshot, and (disk
///    backend) GC segment files the committed segment index no longer
///    references — orphans left by checkpoints that crashed between
///    sealing and committing.
///
/// A crash before step 4 leaves the manifest pointing at the old epoch —
/// the old snapshots and old WALs are untouched, so startup sees exactly
/// the pre-checkpoint state and the half-written new epoch is ignored (and
/// overwritten by the next checkpoint). A crash after step 4 loads the new
/// manifest's mix of old and new snapshots with the new (empty) WALs. No
/// ordering replays an op into a snapshot that already contains it.
fn checkpoint<E: EmbeddingModel>(state: &ServerState<E>) -> Result<String, ServeError> {
    let Some(dir) = &state.data_dir else {
        return Err(ServeError::Config(
            "server runs without a data dir; nothing to checkpoint".into(),
        ));
    };
    let Some(wals) = &state.wals else {
        return Err(ServeError::Config("server has no WAL".into()));
    };

    let num_shards = state.store.num_shards();
    // Only the disk backend mutates shard state here (sealing storage
    // tails); the memory backend checkpoints under read locks so matches
    // keep serving.
    let mut guards: Vec<ShardGuard<'_, E>> = (0..num_shards)
        .map(|i| match state.storage {
            StorageBackend::Memory => ShardGuard::Read(state.store.read_shard(i)),
            StorageBackend::Disk => ShardGuard::Write(state.store.write_shard(i)),
        })
        .collect();
    let mut wal_guards: Vec<_> = wals.iter().map(|wal| wal.lock()).collect();
    // Checkpoint bookkeeping vectors: only ever mutated inside this
    // all-locks critical section, and every update lands before the commit
    // rename — recovering a poisoned guard observes a consistent vector.
    let mut shard_epochs = lock_unpoisoned(&state.shard_epochs);
    let mut checkpoint_seq = lock_unpoisoned(&state.checkpoint_seq);
    let old_epoch = state.epoch.load(Ordering::SeqCst);
    let new_epoch = old_epoch + 1;

    let mut total_bytes = 0usize;
    let mut snapshots_written = 0u64;
    let mut compactions = 0u64;
    let mut reclaimed_bytes = 0u64;
    let mut superseded: Vec<(usize, u64)> = Vec::new();
    for (i, guard) in guards.iter_mut().enumerate() {
        let seq = state.write_seq[i].load(Ordering::SeqCst);
        let dirty = seq != checkpoint_seq[i] || (shard_epochs[i] == 0 && !guard.get().is_empty());
        if !dirty {
            continue;
        }
        // Seal the storage tail first (disk backend): the snapshot then
        // carries the segment index instead of record payloads. Then
        // compact: segments deletion has hollowed out are rewritten *before*
        // the snapshot, so the committed manifest references the compacted
        // files and the superseded ones become gc-able right after the
        // commit below.
        if let ShardGuard::Write(store) = guard {
            store.flush_storage()?;
            let report = store.compact_storage()?;
            compactions += report.segments_compacted;
            reclaimed_bytes += report.reclaimed_bytes;
        }
        let bytes = guard.get().snapshot_bytes(state.snapshot_format)?;
        total_bytes += bytes.len();
        write_atomic(&snapshot_path(dir, i, new_epoch), &bytes)?;
        if shard_epochs[i] != 0 {
            superseded.push((i, shard_epochs[i]));
        }
        shard_epochs[i] = new_epoch;
        checkpoint_seq[i] = seq;
        snapshots_written += 1;
    }
    // Fresh, empty WALs for the new epoch (truncate any leftovers from a
    // previously crashed checkpoint attempt at this same epoch).
    let mut new_wals = Vec::with_capacity(wal_guards.len());
    for (shard, wal) in wal_guards.iter_mut().enumerate() {
        // Make the superseded log durable before committing past it.
        wal.sync()?;
        let (mut log, _) = Wal::open_with(&wal_path(dir, shard, new_epoch), wal.fsync_policy())?;
        log.truncate()?;
        new_wals.push(log);
    }

    let manifest = Value::Map(vec![
        ("shards".into(), Value::UInt(num_shards as u64)),
        ("epoch".into(), Value::UInt(new_epoch)),
        (
            "shard_epochs".into(),
            Value::Seq(shard_epochs.iter().map(|&e| Value::UInt(e)).collect()),
        ),
        (
            "format".into(),
            Value::Str(
                match state.snapshot_format {
                    SnapshotFormat::Json => "json",
                    SnapshotFormat::Binary => "binary",
                }
                .into(),
            ),
        ),
        (
            "attributes".into(),
            Value::Seq(
                state
                    .attributes
                    .iter()
                    .map(|a| Value::Str(a.clone()))
                    .collect(),
            ),
        ),
    ]);
    // Commit point: after this rename the new epoch is the only one loaded.
    write_atomic(&manifest_path(dir), render(manifest).as_bytes())?;
    state.epoch.store(new_epoch, Ordering::SeqCst);

    let mut truncated = 0u64;
    for (shard, new_wal) in new_wals.into_iter().enumerate() {
        let old = std::mem::replace(&mut *wal_guards[shard], new_wal);
        truncated += old.bytes();
        drop(old);
        // relaxed-ok: published size for lock-free /stats; staleness is benign
        state.wal_bytes[shard].store(0, Ordering::Relaxed);
        std::fs::remove_file(wal_path(dir, shard, old_epoch)).ok();
    }
    for (shard, epoch) in superseded {
        std::fs::remove_file(snapshot_path(dir, shard, epoch)).ok();
    }

    // Post-commit housekeeping, still under the shard locks: GC segment
    // files the committed index no longer references (best-effort — the
    // checkpoint itself already committed), and republish each shard's
    // stats so the lock-free `/stats` path reflects the checkpointed state.
    let mut segments_deleted = 0u64;
    for (i, guard) in guards.iter_mut().enumerate() {
        if let ShardGuard::Write(store) = guard {
            match store.gc_storage() {
                Ok(deleted) => segments_deleted += deleted,
                Err(e) => state.telemetry.logger.error(
                    "segment_gc_failed",
                    &[
                        ("shard", Value::UInt(i as u64)),
                        ("error", Value::Str(e.to_string())),
                    ],
                ),
            }
        }
        state.store.publish_stats(i, guard.get());
    }

    state.telemetry.metrics.checkpoints.inc();
    state
        .telemetry
        .metrics
        .checkpoint_epoch
        .set(new_epoch as f64);
    state.telemetry.logger.info(
        "checkpoint",
        &[
            ("epoch", Value::UInt(new_epoch)),
            ("snapshots_written", Value::UInt(snapshots_written)),
            ("wal_bytes_truncated", Value::UInt(truncated)),
            ("segments_deleted", Value::UInt(segments_deleted)),
        ],
    );

    Ok(render(Value::Map(vec![
        ("checkpointed".into(), Value::Bool(true)),
        ("shards".into(), Value::UInt(num_shards as u64)),
        ("epoch".into(), Value::UInt(new_epoch)),
        ("snapshots_written".into(), Value::UInt(snapshots_written)),
        ("snapshot_bytes".into(), Value::UInt(total_bytes as u64)),
        ("wal_bytes_truncated".into(), Value::UInt(truncated)),
        ("segments_deleted".into(), Value::UInt(segments_deleted)),
        ("compactions".into(), Value::UInt(compactions)),
        ("reclaimed_bytes".into(), Value::UInt(reclaimed_bytes)),
    ])))
}

// --------------------------------------------------------------------------
// JSON helpers
// --------------------------------------------------------------------------

fn parse_body(body: &[u8]) -> Result<Value, String> {
    serde_json::from_slice(body).map_err(|e| format!("invalid JSON body: {e}"))
}

fn field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    value
        .as_map()?
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
}

/// `["text", 4.5, null]` → a positional [`Record`].
fn record_from_value(value: &Value) -> Result<Record, String> {
    let items = value.as_seq().ok_or("record must be a JSON array")?;
    let mut values = Vec::with_capacity(items.len());
    for item in items {
        values.push(match item {
            Value::Str(s) => AttrValue::Text(s.clone()),
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => {
                AttrValue::Number(item.as_f64().unwrap_or(f64::NAN))
            }
            Value::Null => AttrValue::Null,
            _ => return Err("attribute values must be strings, numbers or null".into()),
        });
    }
    Ok(Record::new(values))
}

fn error_body(msg: &str) -> String {
    render(Value::Map(vec![(
        "error".into(),
        Value::Str(msg.to_string()),
    )]))
}

fn render(value: Value) -> String {
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_tracks_backlog_over_drain_rate() {
        // No measurable drain: maximum backoff, not a hardcoded 1.
        assert_eq!(derive_retry_after(10, 0.0), 30);
        // 5 queued at 10 records/s drain in 1s.
        assert_eq!(derive_retry_after(5, 10.0), 1);
        // 50 queued at 10/s = 5s.
        assert_eq!(derive_retry_after(50, 10.0), 5);
        // A deep backlog over a slow shard clamps at 30.
        assert_eq!(derive_retry_after(10_000, 0.1), 30);
        // A tiny backlog still asks for at least one second.
        assert_eq!(derive_retry_after(1, 1_000_000.0), 1);
    }

    #[test]
    fn drain_window_measures_recent_rate_not_lifetime() {
        let mut window = DrainWindow {
            since: Instant::now() - std::time::Duration::from_secs(2),
            drained: 0,
            rate: 0.0,
        };
        // 100 records applied over the 2s window: ~50/s.
        let rate = window.sample(100);
        assert!((40.0..=60.0).contains(&rate), "rate {rate}");
        // Within the same (fresh) window the stored estimate answers; the
        // extra 100 records do not skew it until a window closes.
        let again = window.sample(200);
        assert_eq!(again, rate);
        // A fresh window has no estimate yet.
        assert_eq!(DrainWindow::new().sample(0), 0.0);
    }

    #[test]
    fn readiness_degrades_only_past_enabled_thresholds() {
        // Disabled thresholds (0) never degrade, whatever the signals say.
        assert!(degraded_reasons(1_000_000, 0, 1e9, 0).is_empty());
        // Backlog at the threshold is still ready; one past it degrades.
        assert!(degraded_reasons(100, 100, 0.0, 0).is_empty());
        let reasons = degraded_reasons(101, 100, 0.0, 0);
        assert_eq!(reasons, ["ingest backlog above --ready-max-backlog"]);
        // Windowed fsync p99 crossing its threshold degrades independently.
        assert!(degraded_reasons(0, 100, 5.0, 5).is_empty());
        let reasons = degraded_reasons(0, 100, 5.1, 5);
        assert_eq!(reasons, ["windowed fsync p99 above --ready-max-fsync-ms"]);
        // Both at once report both reasons.
        assert_eq!(degraded_reasons(101, 100, 6.0, 5).len(), 2);
    }

    #[test]
    fn record_ids_parse_and_reject_garbage() {
        let id = parse_record_id("2-0-17").unwrap();
        assert_eq!(id.shard, 2);
        assert_eq!(id.entity, EntityId::new(0, 17));
        assert!(parse_record_id("2-0").is_none());
        assert!(parse_record_id("2-0-17-9").is_none());
        assert!(parse_record_id("a-b-c").is_none());
        assert!(parse_record_id("").is_none());
    }

    #[test]
    fn record_from_value_handles_the_three_kinds() {
        let v = Value::Seq(vec![
            Value::Str("sony tv".into()),
            Value::Float(4.5),
            Value::Null,
        ]);
        let record = record_from_value(&v).unwrap();
        assert_eq!(record.arity(), 3);
        assert_eq!(record.values()[0].as_text(), Some("sony tv"));
        assert_eq!(record.values()[1].as_number(), Some(4.5));
        assert!(record.values()[2].is_empty());
        assert!(record_from_value(&Value::Str("not an array".into())).is_err());
        assert!(record_from_value(&Value::Seq(vec![Value::Bool(true)])).is_err());
    }
}
