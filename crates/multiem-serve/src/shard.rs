//! Hash-partitioned sharding of the online [`EntityStore`].
//!
//! [`ShardedEntityStore`] splits the record space into `N` independent
//! [`EntityStore`] shards, each behind its own `RwLock`:
//!
//! * a record is routed to `hash(key(record)) % N`
//!   ([`ShardedEntityStore::shard_of`], a stable FNV-1a over the record's
//!   leading token — a cheap blocking key, so near-duplicates co-locate and
//!   the same record always lands on the same shard across restarts and WAL
//!   replays);
//! * ingestion takes the *write* lock of one shard only, so up to `N` writers
//!   make progress concurrently while the paper's single-writer invariant
//!   holds within every shard;
//! * reads ([`ShardedEntityStore::match_record`], stats) take *read* locks
//!   and fan out across all shards in parallel, merging the per-shard
//!   candidates with [`merge_ranked`] — the same global top-K an
//!   un-partitioned index would rank for the candidates each shard's mutual
//!   top-K rule (Eq. 1) admitted.
//!
//! Sharding trades a little recall for write scalability: co-referent
//! records whose leading tokens differ route to *different* shards and are
//! never fused into one cluster (each shard only merges what it stores), but
//! the read path still surfaces both shards' clusters for a query. Shard
//! counts therefore want to stay modest (4–16) unless write pressure demands
//! more; `1` recovers the exact single-store behaviour.

use crate::sync::{lock_unpoisoned, LockClass, OrderedReadGuard, OrderedRwLock, OrderedWriteGuard};
use multiem_ann::merge_ranked;
use multiem_embed::EmbeddingModel;
use multiem_online::{
    EntityStore, OnlineConfig, OnlineError, SegmentStats, SnapshotFormat, StorageStats, StoreStats,
};
use multiem_table::{EntityId, Record, Schema};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One shard's answer to a match batch: per-query ranked hits plus the
/// shard's scan time in nanoseconds.
type ShardBatchHits = (Vec<Vec<(EntityId, f32)>>, u64);

/// Where the wall time of one [`ShardedEntityStore::match_record_timed`]
/// fan-out went, in nanoseconds (feeds the request trace's `fan_out` /
/// `ann_search` / `rank_merge` spans).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchTiming {
    /// Wall time of the whole fan-out + merge section.
    pub wall_ns: u64,
    /// The slowest single shard's in-shard search time — the parallel
    /// section's critical path.
    pub ann_max_ns: u64,
    /// Merging per-shard candidates into the global top-K.
    pub merge_ns: u64,
    /// Shards queried.
    pub fan_out: u64,
}

impl MatchTiming {
    /// Scatter/gather overhead beyond the slowest shard's own search and the
    /// merge: `wall - ann_max - merge`, clamped at zero.
    pub fn coordination_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.ann_max_ns)
            .saturating_sub(self.merge_ns)
    }
}

/// Nanoseconds since `started`, saturated into a `u64`.
fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A cluster handle that is unique across the whole sharded store: the shard
/// index plus the shard-local [`EntityId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalEntityId {
    /// Index of the shard holding the entity.
    pub shard: u32,
    /// Shard-local entity id.
    pub entity: EntityId,
}

/// Aggregated statistics over all shards.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedStats {
    /// Total live records across shards.
    pub records: usize,
    /// Total records deleted across shards.
    pub deleted: usize,
    /// Total clusters across shards (including singletons).
    pub clusters: usize,
    /// Total multi-member clusters (matched tuples).
    pub tuples: usize,
    /// Total records detached by re-pruning.
    pub pruned_outliers: usize,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<StoreStats>,
}

/// One shard: the store behind its `RwLock`, plus the last stats it
/// *published* — a copy refreshed whenever stats are computed under a
/// successful lock, and served as-is when a writer (most importantly a
/// disk-backend checkpoint, which write-locks every shard) holds the store.
/// That keeps `/stats` and `/healthz` answerable without ever waiting on a
/// shard write lock.
#[derive(Debug)]
struct Shard<E: EmbeddingModel> {
    store: OrderedRwLock<EntityStore<E>>,
    published: Mutex<(StoreStats, StorageStats)>,
}

impl<E: EmbeddingModel> Shard<E> {
    fn new(store: EntityStore<E>) -> Self {
        let published = Mutex::new((store.stats(), store.storage_stats()));
        Self {
            store: OrderedRwLock::new(LockClass::Shard, store),
            published,
        }
    }

    /// Fresh stats when the shard is readable right now, else the last
    /// published copy (never blocks on a writer). The published copy is a
    /// self-consistent value pair, so a poisoned publisher just means we
    /// keep serving the last good copy ([`lock_unpoisoned`]).
    fn stats_nonblocking(&self) -> (StoreStats, StorageStats) {
        match self.store.try_read() {
            Some(store) => {
                let fresh = (store.stats(), store.storage_stats());
                *lock_unpoisoned(&self.published) = fresh;
                fresh
            }
            None => *lock_unpoisoned(&self.published),
        }
    }

    fn publish(&self, store: &EntityStore<E>) {
        *lock_unpoisoned(&self.published) = (store.stats(), store.storage_stats());
    }
}

/// N hash-partitioned [`EntityStore`]s with single-writer-per-shard ingestion
/// and fully concurrent cross-shard reads. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedEntityStore<E: EmbeddingModel> {
    shards: Vec<Shard<E>>,
    schema: Arc<Schema>,
    /// Top-K bound used when fanning per-shard candidates back in.
    k: usize,
}

impl<E: EmbeddingModel + Clone> ShardedEntityStore<E> {
    /// Create an empty sharded store. Every shard gets an identically
    /// configured [`EntityStore`] initialised with `schema` (so the
    /// attribute-selection strategy must be data-free: `Fixed` or
    /// `AllAttributes`).
    ///
    /// `match_within_source` is forced on: every streamed insert of a shard
    /// shares one stream source, so the batch pipeline's same-source
    /// restriction would veto every merge in a serving deployment.
    pub fn new(
        mut config: OnlineConfig,
        schema: Arc<Schema>,
        num_shards: usize,
        encoder: E,
    ) -> Result<Self, OnlineError> {
        config.match_within_source = true;
        config.validate().map_err(OnlineError::InvalidConfig)?;
        let num_shards = num_shards.clamp(1, 4096);
        let k = config.base.k;
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let mut store = EntityStore::try_new(shard_config(&config, shard), encoder.clone())?;
            store.init_schema(schema.clone())?;
            shards.push(Shard::new(store));
        }
        Ok(Self { shards, schema, k })
    }

    /// Rebuild a sharded store from per-shard snapshots, in shard order, as
    /// produced by [`EntityStore::snapshot_bytes`]. A `None` entry stands
    /// for a shard that was never checkpointed (delta checkpoints skip
    /// untouched shards): it is recreated empty from `config`, which is
    /// deterministic, so the combination restores the exact sharded state.
    pub fn restore(
        mut config: OnlineConfig,
        schema: Arc<Schema>,
        snapshots: &[Option<Vec<u8>>],
        encoder: E,
    ) -> Result<Self, OnlineError> {
        config.match_within_source = true;
        let k = config.base.k;
        let mut shards = Vec::with_capacity(snapshots.len());
        for (shard, snapshot) in snapshots.iter().enumerate() {
            let store = match snapshot {
                Some(bytes) => EntityStore::restore_bytes(bytes, encoder.clone())?,
                None => {
                    let mut store =
                        EntityStore::try_new(shard_config(&config, shard), encoder.clone())?;
                    store.init_schema(schema.clone())?;
                    store
                }
            };
            shards.push(Shard::new(store));
        }
        if shards.is_empty() {
            return Self::new(config, schema, 1, encoder);
        }
        Ok(Self { shards, schema, k })
    }
}

/// The per-shard store configuration: disk-backed storage gets a shard-own
/// segment directory (`<dir>/shard-NNN`) so shards never race on segment
/// file names; everything else is shared verbatim.
fn shard_config(config: &OnlineConfig, shard: usize) -> OnlineConfig {
    let mut config = config.clone();
    if let multiem_online::StorageConfig::Disk(disk) = &mut config.storage {
        let dir = std::path::Path::new(&disk.dir).join(format!("shard-{shard:03}"));
        disk.dir = dir.display().to_string();
    }
    config
}

impl<E: EmbeddingModel> ShardedEntityStore<E> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The shard a record routes to: stable FNV-1a over the record's
    /// *leading token* (the first whitespace-separated token of its first
    /// non-empty attribute, lowercased), independent of insertion order and
    /// process restarts.
    ///
    /// Routing by leading token is a cheap blocking scheme: co-referent
    /// records overwhelmingly share their leading token (`"apple iphone 8
    /// plus 64gb"` / `"apple iphone 8 plus 64 gb"`), so they co-locate and
    /// fuse inside one shard. Records whose tokens differ in the first
    /// position end up on different shards — the write path then keeps them
    /// separate, but the fan-out read path still surfaces both.
    pub fn shard_of(&self, record: &Record) -> usize {
        (record_route_hash(record) % self.shards.len() as u64) as usize
    }

    /// Write-lock one shard (ingestion, refresh). Callers that also append
    /// to a WAL must take this lock *before* the WAL lock — the serving
    /// layer's lock order is `shard → wal` everywhere. The guard is
    /// order-checked by the debug-build sanitizer in [`crate::sync`].
    pub fn write_shard(&self, shard: usize) -> OrderedWriteGuard<'_, EntityStore<E>> {
        self.shards[shard].store.write()
    }

    /// Read-lock one shard (order-checked, see [`crate::sync`]).
    pub fn read_shard(&self, shard: usize) -> OrderedReadGuard<'_, EntityStore<E>> {
        self.shards[shard].store.read()
    }

    /// Republish one shard's stats for the lock-free stats path. Callers
    /// already holding the shard's write guard (the checkpoint) use this so
    /// `/stats` served *during* long exclusive sections reflects the state
    /// at the start of the section, not something arbitrarily old.
    pub fn publish_stats(&self, shard: usize, store: &EntityStore<E>) {
        self.shards[shard].publish(store);
    }

    /// Insert a record into its shard, returning its global id and whether it
    /// merged into an existing cluster. Only the owning shard is write-locked.
    pub fn insert(&self, record: Record) -> Result<(GlobalEntityId, bool), OnlineError> {
        let shard = self.shard_of(&record);
        let mut guard = self.write_shard(shard);
        apply_insert(&mut guard, shard, record)
    }

    /// Delete a record by its global id, write-locking only the owning
    /// shard. Returns whether a live record was deleted (`false` for
    /// unknown shards/ids and repeated deletes — deletion is idempotent).
    pub fn delete(&self, id: GlobalEntityId) -> Result<bool, OnlineError> {
        let shard = id.shard as usize;
        if shard >= self.shards.len() {
            return Ok(false);
        }
        let mut guard = self.write_shard(shard);
        guard.delete_record(id.entity)
    }

    /// Read-only fan-out match: query every shard concurrently under its
    /// read lock, then merge the per-shard candidates (each already filtered
    /// by the paper's mutual top-K rule and threshold `m` inside its shard)
    /// into one globally ranked top-K.
    pub fn match_record(&self, record: &Record) -> Vec<(GlobalEntityId, f32)> {
        self.match_record_timed(record).0
    }

    /// [`ShardedEntityStore::match_record`] plus a [`MatchTiming`] breakdown
    /// of where the fan-out's wall time went (each shard times its own
    /// search, so the critical path — the slowest shard — is separable from
    /// scatter/gather overhead and the final merge). A batch of one through
    /// [`ShardedEntityStore::match_batch_timed`], so single and batched
    /// matches can never drift in semantics.
    pub fn match_record_timed(&self, record: &Record) -> (Vec<(GlobalEntityId, f32)>, MatchTiming) {
        // A one-record batch yields exactly one result; the empty-result
        // default is unreachable but keeps this panic-free.
        self.match_batch_timed(std::slice::from_ref(record))
            .pop()
            .unwrap_or_default()
    }

    /// Micro-batched fan-out: answer every query of `records` with **one**
    /// pass over the shards. Each shard is read-locked *once* and serves
    /// all N queries under that single guard, so a batch amortizes lock
    /// acquisition and scatter/gather coordination across requests; the
    /// per-request rank-merge then reuses one set of per-shard candidate
    /// buffers for the whole batch instead of allocating fresh `Vec`s per
    /// request. Results are returned in query order, each with its own
    /// [`MatchTiming`] (the fan-out section is shared, so `wall_ns` =
    /// shared fan-out + that request's own merge; `ann_max_ns` is the
    /// slowest shard's time over the whole batch).
    pub fn match_batch_timed(
        &self,
        records: &[Record],
    ) -> Vec<(Vec<(GlobalEntityId, f32)>, MatchTiming)> {
        if records.is_empty() {
            return Vec::new();
        }
        let section = Instant::now();
        let per_shard: Vec<ShardBatchHits> = self
            .shards
            .par_iter()
            .map(|shard| {
                let started = Instant::now();
                let guard = shard.store.read();
                // One candidates-outer index pass answers the whole batch
                // (see `EntityStore::match_batch`), on top of the one lock
                // acquisition amortized here.
                let hits = guard.match_batch(records);
                (hits, elapsed_ns(started))
            })
            .collect();
        let fan_ns = elapsed_ns(section);
        let ann_max = per_shard.iter().map(|(_, ns)| *ns).max().unwrap_or(0);
        let fan_out = self.shards.len() as u64;

        // Per-request global rank-merge over one reused set of buffers.
        let mut buffers: Vec<Vec<(GlobalEntityId, f32)>> =
            self.shards.iter().map(|_| Vec::new()).collect();
        let mut out = Vec::with_capacity(records.len());
        for query in 0..records.len() {
            let merge_started = Instant::now();
            for (shard, (hits, _)) in per_shard.iter().enumerate() {
                let buffer = &mut buffers[shard];
                buffer.clear();
                buffer.extend(hits[query].iter().map(|&(entity, distance)| {
                    (
                        GlobalEntityId {
                            shard: shard as u32,
                            entity,
                        },
                        distance,
                    )
                }));
            }
            let ranked = merge_ranked(&buffers, self.k);
            let merge_ns = elapsed_ns(merge_started);
            out.push((
                ranked,
                MatchTiming {
                    wall_ns: fan_ns + merge_ns,
                    ann_max_ns: ann_max,
                    merge_ns,
                    fan_out,
                },
            ));
        }
        out
    }

    /// Members of the cluster containing `id`, or `None` for unknown ids.
    pub fn cluster_members(&self, id: GlobalEntityId) -> Option<Vec<GlobalEntityId>> {
        let shard = id.shard as usize;
        if shard >= self.shards.len() {
            return None;
        }
        let members = self.read_shard(shard).cluster_members(id.entity)?;
        Some(
            members
                .into_iter()
                .map(|entity| GlobalEntityId {
                    shard: id.shard,
                    entity,
                })
                .collect(),
        )
    }

    /// Aggregate statistics. **Never blocks on a shard write lock**: a
    /// shard a writer currently holds (e.g. a disk-backend checkpoint
    /// holding every shard) reports its last published stats instead, so
    /// `/stats` and health checks stay responsive through exclusive
    /// sections. Quiescent stores always report fresh, exact values.
    pub fn stats(&self) -> ShardedStats {
        self.stats_with_storage().0
    }

    /// Store and storage statistics from one nonblocking pass over the
    /// shards (the `/stats` fast path runs on an I/O thread, so each shard
    /// is visited — and its stats computed — exactly once).
    pub fn stats_with_storage(&self) -> (ShardedStats, StorageStats) {
        let per_shard: Vec<(StoreStats, StorageStats)> =
            self.shards.iter().map(Shard::stats_nonblocking).collect();
        let mut storage: Option<StorageStats> = None;
        for (_, stats) in &per_shard {
            storage = Some(match storage {
                None => *stats,
                Some(mut sum) => {
                    sum.records += stats.records;
                    sum.deleted_records += stats.deleted_records;
                    sum.resident_records += stats.resident_records;
                    sum.resident_bytes += stats.resident_bytes;
                    sum.spilled_records += stats.spilled_records;
                    sum.spilled_bytes += stats.spilled_bytes;
                    sum.segments += stats.segments;
                    sum.segments_deleted += stats.segments_deleted;
                    sum.compactions += stats.compactions;
                    sum.reclaimed_bytes += stats.reclaimed_bytes;
                    sum.cache_hits += stats.cache_hits;
                    sum.cache_misses += stats.cache_misses;
                    sum
                }
            });
        }
        let shards: Vec<StoreStats> = per_shard.into_iter().map(|(store, _)| store).collect();
        let sharded = ShardedStats {
            records: shards.iter().map(|s| s.records).sum(),
            deleted: shards.iter().map(|s| s.deleted).sum(),
            clusters: shards.iter().map(|s| s.clusters).sum(),
            tuples: shards.iter().map(|s| s.tuples).sum(),
            pruned_outliers: shards.iter().map(|s| s.pruned_outliers).sum(),
            shards,
        };
        // A sharded store always has at least one shard; the default only
        // papers over that impossibility without a panic path.
        (sharded, storage.unwrap_or_default())
    }

    /// Run density-based pruning + index maintenance on every shard
    /// (write-locks shards one at a time).
    pub fn refresh(&self) {
        for shard in 0..self.shards.len() {
            self.write_shard(shard).refresh();
        }
    }

    /// Serialize one shard in the given format (read-locks it).
    pub fn snapshot_shard(
        &self,
        shard: usize,
        format: SnapshotFormat,
    ) -> Result<Vec<u8>, OnlineError> {
        self.read_shard(shard).snapshot_bytes(format)
    }

    /// Aggregate record-storage counters across every shard. Like
    /// [`ShardedEntityStore::stats`], never blocks on a write lock (held
    /// shards report their last published counters).
    pub fn storage_stats(&self) -> StorageStats {
        self.stats_with_storage().1
    }

    /// Per-shard storage counters plus per-segment health, for the
    /// `/debug/storage` surface. Never blocks on a write lock: a held shard
    /// reports its last published counters with an empty segment list
    /// (segment health is diagnostic, not worth waiting on a checkpoint
    /// for).
    pub fn shard_storage_details(&self) -> Vec<(StorageStats, Vec<SegmentStats>)> {
        self.shards
            .iter()
            .map(|shard| match shard.store.try_read() {
                Some(store) => {
                    shard.publish(&store);
                    (store.storage_stats(), store.segment_stats())
                }
                None => (lock_unpoisoned(&shard.published).1, Vec::new()),
            })
            .collect()
    }
}

/// Apply one insert to an already write-locked shard, returning the global
/// id and whether the record merged into an existing cluster. Shared by
/// [`ShardedEntityStore::insert`] and the serving layer's WAL-interposed
/// write path, so the `matched` semantics and the insert sequence can never
/// drift between the two.
pub fn apply_insert<E: EmbeddingModel>(
    store: &mut EntityStore<E>,
    shard: usize,
    record: Record,
) -> Result<(GlobalEntityId, bool), OnlineError> {
    let entity = store.insert(record)?;
    let matched = store
        .cluster_members(entity)
        .map(|members| members.len() > 1)
        .unwrap_or(false);
    Ok((
        GlobalEntityId {
            shard: shard as u32,
            entity,
        },
        matched,
    ))
}

/// A record's routing key: the lowercased leading token of the first
/// non-empty attribute (empty when no value renders to text). This is both
/// what [`ShardedEntityStore::shard_of`] hashes and the "source" key the
/// serving layer's heavy-hitter analytics counts, so `/debug/top` ranks
/// exactly the keys that drive shard routing.
pub fn route_token(record: &Record) -> String {
    record
        .values()
        .iter()
        .map(multiem_table::Value::render)
        .find_map(|text| text.split_whitespace().next().map(str::to_ascii_lowercase))
        .unwrap_or_default()
}

/// Stable FNV-1a 64 over a record's routing key (see [`route_token`]).
/// Records with no non-empty value hash their (empty) key to a fixed shard.
fn record_route_hash(record: &Record) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let token = route_token(record);
    for byte in token.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_core::MultiEmConfig;
    use multiem_embed::HashedLexicalEncoder;

    fn config() -> OnlineConfig {
        OnlineConfig::new(MultiEmConfig {
            m: 0.35,
            ..MultiEmConfig::default()
        })
        .with_all_attributes()
    }

    fn sharded(n: usize) -> ShardedEntityStore<HashedLexicalEncoder> {
        ShardedEntityStore::new(
            config(),
            Schema::new(["title"]).shared(),
            n,
            HashedLexicalEncoder::default(),
        )
        .unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let store = sharded(8);
        let a = Record::from_texts(["apple iphone 8 plus 64gb silver"]);
        assert_eq!(store.shard_of(&a), store.shard_of(&a.clone()));
        // Routing keys off the leading token: near-duplicates co-locate...
        let b = Record::from_texts(["Apple iphone 8 plus 64 gb silver"]);
        assert_eq!(store.shard_of(&a), store.shard_of(&b));
        // ...while 64 distinct leading tokens spread across shards.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            seen.insert(store.shard_of(&Record::from_texts([format!("item{i} number")])));
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn similar_records_merge_within_a_shard() {
        let store = sharded(1); // one shard: both records share it
        let (a, merged_a) = store
            .insert(Record::from_texts(["golden heart river"]))
            .unwrap();
        assert!(!merged_a);
        let (_b, merged_b) = store
            .insert(Record::from_texts(["golden heart river live"]))
            .unwrap();
        assert!(merged_b, "near-duplicate should fuse into the cluster");
        assert_eq!(store.cluster_members(a).unwrap().len(), 2);
        let stats = store.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.tuples, 1);
    }

    #[test]
    fn match_record_fans_out_across_shards() {
        let store = sharded(4);
        // Insert enough near-duplicates that multiple shards hold clusters.
        let titles = [
            "golden heart river",
            "golden heart river live",
            "golden heart river remaster",
            "makita drill 18v",
            "makita drill 18 v",
        ];
        for t in titles {
            store.insert(Record::from_texts([t])).unwrap();
        }
        let hits = store.match_record(&Record::from_texts(["golden heart river acoustic"]));
        assert!(!hits.is_empty());
        // Results are globally sorted by distance.
        for pair in hits.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // A match must point at a river cluster, not the drill.
        let top = store.cluster_members(hits[0].0).unwrap();
        let top_record = store
            .read_shard(top[0].shard as usize)
            .record(top[0].entity)
            .unwrap();
        assert!(top_record.values()[0].render().contains("river"));
    }

    #[test]
    fn batched_matches_agree_with_single_matches() {
        let store = sharded(4);
        let titles = [
            "golden heart river",
            "golden heart river live",
            "makita drill 18v",
            "makita drill 18 v",
            "sony bravia tv",
            "dyson v11 vacuum",
        ];
        for t in titles {
            store.insert(Record::from_texts([t])).unwrap();
        }
        let probes = vec![
            Record::from_texts(["golden heart river acoustic"]),
            Record::from_texts(["makita drill"]),
            Record::from_texts(["sony bravia tv 55"]),
        ];
        let batched = store.match_batch_timed(&probes);
        assert_eq!(batched.len(), probes.len());
        for (probe, (ranked, timing)) in probes.iter().zip(&batched) {
            assert_eq!(
                *ranked,
                store.match_record(probe),
                "batched ranking must equal the single-query ranking"
            );
            assert_eq!(timing.fan_out, 4);
        }
        assert!(store.match_batch_timed(&[]).is_empty());
    }

    #[test]
    fn single_shard_matches_unsharded_store() {
        let titles = [
            "golden heart river",
            "golden heart river live",
            "sony bravia tv",
            "dyson v11 vacuum",
            "sony bravia television",
        ];
        let sharded = sharded(1);
        let mut config_plain = config();
        config_plain.match_within_source = true;
        let mut plain = EntityStore::new(config_plain, HashedLexicalEncoder::default());
        plain.init_schema(Schema::new(["title"]).shared()).unwrap();
        for t in titles {
            sharded.insert(Record::from_texts([t])).unwrap();
            plain.insert(Record::from_texts([t])).unwrap();
        }
        let probe = Record::from_texts(["sony bravia tv 55"]);
        let sharded_hits: Vec<(EntityId, f32)> = sharded
            .match_record(&probe)
            .into_iter()
            .map(|(gid, d)| (gid.entity, d))
            .collect();
        assert_eq!(sharded_hits, plain.match_record(&probe));
        let stats = sharded.stats();
        let plain_stats = plain.stats();
        assert_eq!(stats.records, plain_stats.records);
        assert_eq!(stats.clusters, plain_stats.clusters);
        assert_eq!(stats.tuples, plain_stats.tuples);
    }

    #[test]
    fn delete_detaches_record_from_its_cluster() {
        let store = sharded(2);
        let (a, _) = store
            .insert(Record::from_texts(["golden heart river"]))
            .unwrap();
        let (b, merged) = store
            .insert(Record::from_texts(["golden heart river live"]))
            .unwrap();
        assert!(merged);
        assert_eq!(store.cluster_members(a).unwrap().len(), 2);

        assert!(store.delete(b).unwrap());
        assert!(!store.delete(b).unwrap(), "deletion is idempotent");
        assert_eq!(store.cluster_members(a).unwrap(), vec![a]);
        assert!(store.cluster_members(b).is_none(), "deleted id is unknown");
        // Out-of-range shards are a clean miss, not a panic.
        assert!(!store
            .delete(GlobalEntityId {
                shard: 99,
                entity: EntityId::new(0, 0)
            })
            .unwrap());

        let stats = store.stats();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.tuples, 0);
        // The deleted record can never come back through a match.
        let hits = store.match_record(&Record::from_texts(["golden heart river live"]));
        assert!(hits.iter().all(|(gid, _)| *gid != b));
    }

    #[test]
    fn snapshot_restore_preserves_all_shards() {
        let store = sharded(3);
        for i in 0..12 {
            store
                .insert(Record::from_texts([format!("item number {i}")]))
                .unwrap();
        }
        let snapshots: Vec<Option<Vec<u8>>> = (0..store.num_shards())
            .map(|s| Some(store.snapshot_shard(s, SnapshotFormat::Binary).unwrap()))
            .collect();
        let restored = ShardedEntityStore::restore(
            config(),
            Schema::new(["title"]).shared(),
            &snapshots,
            HashedLexicalEncoder::default(),
        )
        .unwrap();
        assert_eq!(restored.num_shards(), 3);
        assert_eq!(restored.stats(), store.stats());
        let probe = Record::from_texts(["item number 7"]);
        assert_eq!(restored.match_record(&probe), store.match_record(&probe));
    }

    #[test]
    fn disk_shards_get_private_segment_dirs_and_agree_with_memory() {
        static DIR_SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "multiem-shard-disk-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        let mut disk_cfg = config().with_disk_storage(dir.display().to_string());
        if let multiem_online::StorageConfig::Disk(d) = &mut disk_cfg.storage {
            d.segment_records = 2; // force seals on a handful of records
        }
        let on_disk = ShardedEntityStore::new(
            disk_cfg,
            Schema::new(["title"]).shared(),
            3,
            HashedLexicalEncoder::default(),
        )
        .unwrap();
        let in_mem = sharded(3);
        let titles = [
            "golden heart river",
            "golden heart river live",
            "makita drill 18v",
            "makita drill 18 v",
            "sony bravia tv",
            "dyson v11 vacuum",
            "sony bravia television",
        ];
        for t in titles {
            on_disk.insert(Record::from_texts([t])).unwrap();
            in_mem.insert(Record::from_texts([t])).unwrap();
        }
        assert_eq!(on_disk.stats(), in_mem.stats());
        let probe = Record::from_texts(["sony bravia tv 55"]);
        assert_eq!(on_disk.match_record(&probe), in_mem.match_record(&probe));

        // Each shard sealed into its own subdirectory — no name races.
        let storage = on_disk.storage_stats();
        assert_eq!(storage.backend, "disk");
        assert!(storage.spilled_records > 0);
        let shard_dirs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        for shard in 0..3 {
            assert!(
                shard_dirs.contains(&format!("shard-{shard:03}")),
                "missing per-shard segment dir: {shard_dirs:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_selection_is_rejected_without_data() {
        let auto = OnlineConfig::new(MultiEmConfig::default());
        let err = ShardedEntityStore::new(
            auto,
            Schema::new(["title"]).shared(),
            2,
            HashedLexicalEncoder::default(),
        );
        assert!(matches!(err, Err(OnlineError::InvalidConfig(_))));
    }
}
