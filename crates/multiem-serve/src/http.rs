//! Dependency-free HTTP/1.1 plumbing on `std::net`.
//!
//! Just enough of the protocol for a JSON service: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, `Connection: close`
//! honoured. No chunked encoding, no TLS — the serving layer sits behind a
//! reverse proxy in any real deployment, exactly like the related VectorDB
//! repo's thin request layer.
//!
//! The server side is built for the event-driven reactor in [`crate::net`]:
//! [`RequestParser`] consumes bytes **incrementally** — a header split
//! across reads, a body trickling in one byte at a time, or several
//! pipelined requests arriving in one read all parse correctly — so the
//! I/O layer never blocks a thread waiting for the rest of a request. The
//! blocking conveniences ([`read_request`], [`HttpClient`]) are thin
//! wrappers used by tests, the load generator and the example client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on accepted bodies (64 MiB) — a malformed or hostile
/// `Content-Length` must not make the server allocate unbounded memory.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 << 10;

const MAX_HEADERS: usize = 100;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this exchange.
    pub close: bool,
    /// Nanoseconds the parser spent assembling this request across however
    /// many `try_next` calls it took (the trace's `parse` span).
    pub parse_ns: u64,
}

/// Incremental HTTP/1.1 request parser: feed it whatever bytes the socket
/// yields, in any fragmentation, and take complete requests out as they
/// materialise.
///
/// The parser is a resumable state machine over one buffer: it waits for the
/// blank line ending the head, parses request line + headers, then waits for
/// `Content-Length` body bytes. Bytes beyond the first complete request stay
/// buffered (keep-alive pipelining), and limits ([`MAX_HEAD_BYTES`],
/// [`MAX_BODY_BYTES`], 100 headers) are enforced as soon as they are
/// decidable, so a hostile peer cannot balloon memory by never finishing a
/// request.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// How far `buf` has been scanned for the head terminator, so repeated
    /// `try_next` calls on a trickling connection stay O(new bytes).
    scanned: usize,
    /// Parse time accumulated for the in-progress request (carried onto the
    /// completed [`Request`] and reset).
    parse_ns: u64,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the parser holds no buffered bytes (i.e. the connection is
    /// between requests).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the parser holds the start of a not-yet-complete request
    /// (used by the reactor's mid-request timeout).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Try to take one complete request out of the buffer. `Ok(None)` means
    /// more bytes are needed; an `InvalidData` error means the peer sent
    /// something that can never become a valid request (the connection
    /// should answer 400 and close).
    pub fn try_next(&mut self) -> io::Result<Option<Request>> {
        let started = Instant::now();
        let result = self.try_next_inner();
        let spent = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        match result {
            Ok(Some(mut request)) => {
                request.parse_ns = self.parse_ns.saturating_add(spent);
                self.parse_ns = 0;
                Ok(Some(request))
            }
            other => {
                // Incomplete request: bank the time spent scanning so the
                // completed request's parse span covers every fragment.
                self.parse_ns = self.parse_ns.saturating_add(spent);
                other
            }
        }
    }

    fn try_next_inner(&mut self) -> io::Result<Option<Request>> {
        // 1. Find the blank line terminating the head.
        let Some(head_end) = self.find_head_end() else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(bad("request head too large"));
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }

        // 2. Parse request line + headers (errors are terminal).
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| bad("request head is not valid UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or_else(|| bad("missing request line"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| bad("missing method"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(bad("unsupported HTTP version"));
        }
        let path = target.split('?').next().unwrap_or(target).to_string();

        let mut content_length = 0usize;
        let mut close = false;
        let mut headers = 0usize;
        for line in lines {
            if line.is_empty() {
                continue; // the terminator's empty split remainder
            }
            headers += 1;
            if headers > MAX_HEADERS {
                return Err(bad("too many headers"));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad("malformed header"));
            };
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                    if content_length > MAX_BODY_BYTES {
                        return Err(bad("body too large"));
                    }
                }
                "connection" => {
                    close = value.eq_ignore_ascii_case("close");
                }
                _ => {}
            }
        }

        // 3. Wait for the whole body before consuming anything.
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[body_start..total].to_vec();
        self.buf.drain(..total);
        self.scanned = 0;
        Ok(Some(Request {
            method,
            path,
            body,
            close,
            parse_ns: 0, // stamped by `try_next`
        }))
    }

    /// Offset of the `\r\n\r\n` head terminator, scanning only bytes not yet
    /// examined by earlier calls.
    fn find_head_end(&mut self) -> Option<usize> {
        let start = self.scanned.saturating_sub(3);
        let found = self.buf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|i| start + i);
        if found.is_none() {
            self.scanned = self.buf.len();
        }
        found
    }
}

/// Read one request off a blocking reader (test / tooling convenience; the
/// server itself feeds a [`RequestParser`] from nonblocking sockets).
/// `Ok(None)` means the peer closed cleanly between requests. Bytes of a
/// *second* pipelined request that share a buffered read with the first are
/// consumed from `reader` and dropped — use a long-lived [`RequestParser`]
/// when pipelining matters.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut parser = RequestParser::new();
    loop {
        if let Some(request) = parser.try_next()? {
            return Ok(Some(request));
        }
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return if parser.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            };
        }
        let n = chunk.len();
        parser.feed(chunk);
        reader.consume(n);
    }
}

/// Serialize one JSON response to its on-wire bytes (the reactor's write
/// path queues these on the connection's output buffer).
pub fn render_response(
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    render_response_typed(
        status,
        reason,
        "application/json",
        body,
        close,
        extra_headers,
    )
}

/// [`render_response`] with an explicit `Content-Type` (the `/metrics`
/// endpoint serves Prometheus text exposition, not JSON).
pub fn render_response_typed(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    if close {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

/// Write one JSON response.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_with(writer, status, reason, body, close, &[])
}

/// Write one JSON response with extra headers (e.g. `Retry-After` on a 429).
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    writer.write_all(&render_response(status, reason, body, close, extra_headers))?;
    writer.flush()
}

/// A fully parsed client-side response: status, lowercased `(name, value)`
/// header pairs, body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A minimal keep-alive JSON client over one TCP connection (used by the
/// load generator, the example and the integration tests).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?; // request/response pairs must not sit in Nagle
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Issue one request, returning `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let (status, _, body) = self.request_with_headers(method, path, body)?;
        Ok((status, body))
    }

    /// Issue one request, returning `(status, headers, body)` with the
    /// response headers as lowercased `(name, value)` pairs (used by tests
    /// that assert on `Retry-After`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<FullResponse> {
        self.send(method, path, body)?;
        self.recv()
    }

    /// Write one request WITHOUT reading its response — HTTP/1.1
    /// pipelining. The server answers pipelined requests strictly in send
    /// order, so `n` [`HttpClient::send`]s followed by `n`
    /// [`HttpClient::recv`]s pair up positionally.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: multiem\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.stream.flush()
    }

    /// Read the next response off the connection (send order).
    pub fn recv(&mut self) -> io::Result<FullResponse> {
        read_response(&mut self.reader)
    }
}

/// Parse one HTTP response (status line, headers, `Content-Length` body)
/// off a blocking reader. Shared by [`HttpClient`] and the raw-socket
/// integration tests.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<FullResponse> {
    let status_line = read_line(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no status line"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            if name == "content-length" {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
            headers.push((name, value.trim().to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, headers, text))
        .map_err(|e| bad(&format!("non-utf8 body: {e}")))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one CRLF-terminated line (returns `None` at EOF before any byte).
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n >= MAX_HEAD_BYTES {
        return Err(bad("header line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /records?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbodyGET";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/records");
        assert_eq!(req.body, b"body");
        assert!(!req.close);
    }

    #[test]
    fn honours_connection_close_and_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert!(req.close);
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut reader = BufReader::new(raw.as_bytes());
        assert!(read_request(&mut reader).is_err());
        let mut reader = BufReader::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn incremental_parse_survives_any_fragmentation() {
        let raw = b"POST /records HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello world";
        // Feed the whole request one byte at a time.
        let mut parser = RequestParser::new();
        for (i, byte) in raw.iter().enumerate() {
            assert!(
                parser.try_next().unwrap().is_none(),
                "complete request after only {i} bytes"
            );
            parser.feed(&[*byte]);
        }
        let req = parser.try_next().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
        // The parse span accumulated across every fragmented call.
        assert!(req.parse_ns > 0);
        assert!(parser.is_empty());

        // Feed it again split exactly at the header terminator.
        let mut parser = RequestParser::new();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 2;
        parser.feed(&raw[..split]);
        assert!(parser.try_next().unwrap().is_none());
        parser.feed(&raw[split..]);
        assert_eq!(parser.try_next().unwrap().unwrap().body, b"hello world");
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_buffer() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
        let first = parser.try_next().unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert!(parser.has_partial());
        let second = parser.try_next().unwrap().unwrap();
        assert_eq!((second.path.as_str(), &second.body[..]), ("/b", &b"hi"[..]));
        assert!(parser.is_empty());
        assert!(parser.try_next().unwrap().is_none());
    }

    #[test]
    fn unbounded_heads_are_rejected_incrementally() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        // A peer that streams headers forever must be cut off once the head
        // budget is exhausted, even though no terminator ever arrives.
        for i in 0..2000 {
            parser.feed(format!("X-Filler-{i}: {i}\r\n").as_bytes());
            if parser.try_next().is_err() {
                return;
            }
        }
        panic!("oversized head was never rejected");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "{\"a\":1}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
        let closed = render_response(400, "Bad Request", "{}", true, &[]);
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("Connection: close\r\n"));
    }
}
