//! Dependency-free HTTP/1.1 plumbing on `std::net`.
//!
//! Just enough of the protocol for a JSON service: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, `Connection: close`
//! honoured. No chunked encoding, no TLS — the serving layer sits behind a
//! reverse proxy in any real deployment, exactly like the related VectorDB
//! repo's thin request layer.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on accepted bodies (64 MiB) — a malformed or hostile
/// `Content-Length` must not make a worker allocate unbounded memory.
pub const MAX_BODY_BYTES: usize = 64 << 20;

const MAX_HEADERS: usize = 100;
const MAX_LINE_BYTES: usize = 16 << 10;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this exchange.
    pub close: bool,
}

/// Read one request off a keep-alive connection. `Ok(None)` means the peer
/// closed cleanly between requests.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let request_line = match read_line(reader)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut close = false;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?.ok_or_else(|| bad("connection closed mid-headers"))?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            return Ok(Some(Request {
                method,
                path,
                body,
                close,
            }));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(bad("body too large"));
                }
            }
            "connection" => {
                close = value.eq_ignore_ascii_case("close");
            }
            _ => {}
        }
    }
    Err(bad("too many headers"))
}

/// Write one JSON response.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_with(writer, status, reason, body, close, &[])
}

/// Write one JSON response with extra headers (e.g. `Retry-After` on a 429).
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    if close {
        writer.write_all(b"Connection: close\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// A fully parsed client-side response: status, lowercased `(name, value)`
/// header pairs, body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A minimal keep-alive JSON client over one TCP connection (used by the
/// load generator, the example and the integration tests).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?; // request/response pairs must not sit in Nagle
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Issue one request, returning `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let (status, _, body) = self.request_with_headers(method, path, body)?;
        Ok((status, body))
    }

    /// Issue one request, returning `(status, headers, body)` with the
    /// response headers as lowercased `(name, value)` pairs (used by tests
    /// that assert on `Retry-After`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<FullResponse> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: multiem\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.stream.flush()?;

        let status_line = read_line(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no status line"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut self.reader)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                if name == "content-length" {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value.trim().to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|text| (status, headers, text))
            .map_err(|e| bad(&format!("non-utf8 body: {e}")))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one CRLF-terminated line (returns `None` at EOF before any byte).
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n >= MAX_LINE_BYTES {
        return Err(bad("header line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /records?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbodyGET";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/records");
        assert_eq!(req.body, b"body");
        assert!(!req.close);
    }

    #[test]
    fn honours_connection_close_and_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert!(req.close);
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut reader = BufReader::new(raw.as_bytes());
        assert!(read_request(&mut reader).is_err());
        let mut reader = BufReader::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "{\"a\":1}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }
}
