//! Metric registry with Prometheus text-exposition rendering.
//!
//! A [`Registry`] owns named metric *families* — counters, gauges and
//! [`Histogram`]s — each optionally carrying a fixed label set (label
//! cardinality is decided at registration time, so the hot path never
//! allocates or hashes label strings). Handles are `Arc`s of plain atomics:
//! incrementing a [`Counter`] is one relaxed `fetch_add`, and scraping
//! takes only the registry's own registration mutex — never a shard or WAL
//! lock — so `GET /metrics` follows the same lock-free discipline as
//! `/stats`.
//!
//! [`Registry::render`] emits the [Prometheus text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# HELP` / `# TYPE` once per family, one sample line per child, and for
//! histograms cumulative `_bucket{le="..."}` lines over the non-empty
//! log-linear buckets plus `+Inf`, `_sum` and `_count`. Nanosecond
//! histograms render in seconds, per Prometheus convention.

use super::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (one relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone metric cell; scrape skew is fine
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed); // relaxed-ok: standalone metric cell; scrape skew is fine
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // relaxed-ok: standalone metric cell; scrape skew is fine
    }
}

/// A gauge: a value that can go up and down (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed); // relaxed-ok: standalone metric cell; scrape skew is fine
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed)) // relaxed-ok: standalone metric cell; scrape skew is fine
    }
}

/// One registered child: a label string (maybe empty) plus the metric.
#[derive(Debug)]
enum Child {
    Counter(String, Arc<Counter>),
    Gauge(String, Arc<Gauge>),
    Histogram(String, Arc<Histogram>),
    /// A histogram over dimensionless values (batch sizes, counts): bucket
    /// bounds and the sum render as the raw recorded numbers, not ns→s.
    HistogramRaw(String, Arc<Histogram>),
}

/// A named family: HELP/TYPE header plus its children, render-ordered.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: &'static str,
    children: Vec<Child>,
}

/// The metric registry. Registration happens at startup (under a mutex);
/// recording happens on shared atomic handles; rendering walks the families
/// in registration order. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, kind: &'static str, child: Child) {
        let mut families = crate::sync::lock_unpoisoned(&self.families);
        match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                debug_assert_eq!(family.kind, kind, "metric {name} re-registered as {kind}");
                family.children.push(child);
            }
            None => families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                children: vec![child],
            }),
        }
    }

    /// Register (or extend) a counter family. `labels` is a literal
    /// Prometheus label body like `endpoint="match",status="2xx"` (empty for
    /// an unlabelled metric).
    pub fn counter(&self, name: &str, help: &str, labels: &str) -> Arc<Counter> {
        let counter = Arc::new(Counter::default());
        self.register(
            name,
            help,
            "counter",
            Child::Counter(labels.to_string(), Arc::clone(&counter)),
        );
        counter
    }

    /// Register (or extend) a gauge family.
    pub fn gauge(&self, name: &str, help: &str, labels: &str) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::default());
        self.register(
            name,
            help,
            "gauge",
            Child::Gauge(labels.to_string(), Arc::clone(&gauge)),
        );
        gauge
    }

    /// Register (or extend) a histogram family. Samples are recorded in
    /// nanoseconds and rendered in seconds.
    pub fn histogram(&self, name: &str, help: &str, labels: &str) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.register(
            name,
            help,
            "histogram",
            Child::Histogram(labels.to_string(), Arc::clone(&histogram)),
        );
        histogram
    }

    /// Register (or extend) a histogram family over dimensionless values
    /// (batch occupancies, counts): unlike [`Registry::histogram`], samples
    /// render as the raw recorded numbers instead of being scaled ns→s.
    pub fn histogram_raw(&self, name: &str, help: &str, labels: &str) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.register(
            name,
            help,
            "histogram",
            Child::HistogramRaw(labels.to_string(), Arc::clone(&histogram)),
        );
        histogram
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let families = crate::sync::lock_unpoisoned(&self.families);
        let mut out = String::with_capacity(4096);
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
            for child in &family.children {
                match child {
                    Child::Counter(labels, counter) => {
                        let _ =
                            writeln!(out, "{}{} {}", family.name, braced(labels), counter.get());
                    }
                    Child::Gauge(labels, gauge) => {
                        let _ = writeln!(out, "{}{} {}", family.name, braced(labels), gauge.get());
                    }
                    Child::Histogram(labels, histogram) => {
                        render_histogram(&mut out, &family.name, labels, histogram, seconds);
                    }
                    Child::HistogramRaw(labels, histogram) => {
                        render_histogram(&mut out, &family.name, labels, histogram, raw);
                    }
                }
            }
        }
        out
    }
}

/// `labels` wrapped in braces, or nothing when empty.
fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// `labels` extended with one more `name="value"` pair (for `le`).
fn with_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{labels},{extra}}}")
    }
}

/// Nanoseconds as a Prometheus seconds value (plain decimal, no exponent).
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1.0e9)
}

/// A dimensionless sample rendered as-is (raw-value histograms).
fn raw(value: u64) -> String {
    format!("{value}")
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    histogram: &Histogram,
    scale: fn(u64) -> String,
) {
    use std::fmt::Write;
    let snapshot = histogram.snapshot();
    let mut cumulative = 0u64;
    for (bound, count) in snapshot.buckets() {
        cumulative += count;
        let le = with_label(labels, &format!("le=\"{}\"", scale(bound)));
        let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
    }
    let inf = with_label(labels, "le=\"+Inf\"");
    let _ = writeln!(out, "{name}_bucket{inf} {}", snapshot.count());
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        braced(labels),
        scale(snapshot.sum())
    );
    let _ = writeln!(out, "{name}_count{} {}", braced(labels), snapshot.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let registry = Registry::new();
        let hits = registry.counter("hits_total", "Hits.", "");
        let labelled = registry.counter("hits_total", "Hits.", "kind=\"write\"");
        let depth = registry.gauge("queue_depth", "Queue depth.", "");
        hits.inc();
        hits.add(2);
        labelled.inc();
        depth.set(7.5);
        assert_eq!(hits.get(), 3);
        assert_eq!(labelled.get(), 1);
        assert_eq!(depth.get(), 7.5);
    }

    /// Golden test: the exposition output is byte-exact — HELP/TYPE once per
    /// family, label bodies preserved, histogram buckets cumulative with
    /// seconds-valued `le` bounds, `+Inf`/`_sum`/`_count` always present.
    #[test]
    fn exposition_format_is_golden() {
        let registry = Registry::new();
        let requests = registry.counter(
            "multiem_requests_total",
            "Requests routed.",
            "endpoint=\"match\",status=\"2xx\"",
        );
        let rejected = registry.counter(
            "multiem_requests_total",
            "Requests routed.",
            "endpoint=\"ingest\",status=\"429\"",
        );
        let uptime = registry.gauge("multiem_uptime_seconds", "Seconds since start.", "");
        let latency = registry.histogram(
            "multiem_request_duration_seconds",
            "End-to-end latency.",
            "endpoint=\"match\"",
        );
        requests.add(5);
        rejected.inc();
        uptime.set(42.0);
        // 10 ns lands in the one-per-value linear range (le = 1e-8 s);
        // 100_000 ns lands in the bucket [98304, 102400) → le 0.000102399 s.
        latency.record(10);
        latency.record(10);
        latency.record(100_000);

        let expected = "\
# HELP multiem_requests_total Requests routed.
# TYPE multiem_requests_total counter
multiem_requests_total{endpoint=\"match\",status=\"2xx\"} 5
multiem_requests_total{endpoint=\"ingest\",status=\"429\"} 1
# HELP multiem_uptime_seconds Seconds since start.
# TYPE multiem_uptime_seconds gauge
multiem_uptime_seconds 42
# HELP multiem_request_duration_seconds End-to-end latency.
# TYPE multiem_request_duration_seconds histogram
multiem_request_duration_seconds_bucket{endpoint=\"match\",le=\"0.00000001\"} 2
multiem_request_duration_seconds_bucket{endpoint=\"match\",le=\"0.000102399\"} 3
multiem_request_duration_seconds_bucket{endpoint=\"match\",le=\"+Inf\"} 3
multiem_request_duration_seconds_sum{endpoint=\"match\"} 0.00010002
multiem_request_duration_seconds_count{endpoint=\"match\"} 3
";
        assert_eq!(registry.render(), expected);
    }

    #[test]
    fn raw_histograms_render_unscaled_bounds() {
        let registry = Registry::new();
        let sizes = registry.histogram_raw("batch_size", "Batch occupancy.", "kind=\"match\"");
        sizes.record(1);
        sizes.record(1);
        sizes.record(7);
        let rendered = registry.render();
        // Bounds and sum stay dimensionless: no ns→seconds scaling.
        assert!(rendered.contains("batch_size_bucket{kind=\"match\",le=\"1\"} 2\n"));
        assert!(rendered.contains("batch_size_bucket{kind=\"match\",le=\"+Inf\"} 3\n"));
        assert!(rendered.contains("batch_size_sum{kind=\"match\"} 9\n"));
        assert!(rendered.contains("batch_size_count{kind=\"match\"} 3\n"));
    }

    #[test]
    fn empty_histograms_still_render_complete_families() {
        let registry = Registry::new();
        registry.histogram("latency_seconds", "Latency.", "");
        let rendered = registry.render();
        assert!(rendered.contains("latency_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(rendered.contains("latency_seconds_sum 0\n"));
        assert!(rendered.contains("latency_seconds_count 0\n"));
    }
}
