//! Rolling time-window telemetry: "p99 over the last N seconds".
//!
//! Cumulative histograms answer lifetime questions; operators watching live
//! traffic need *recent* ones. A [`WindowedHistogram`] is a small ring of
//! the existing lock-free log-linear [`Histogram`]s, one per **sub-window**
//! of the rolling window ([`WINDOW_SLOTS`] sub-windows of
//! `window_secs / WINDOW_SLOTS` seconds each). Recording stays the same two
//! relaxed atomic adds plus one epoch load; rotation is lazy — the first
//! sample landing in a sub-window whose ring slot still holds an expired
//! epoch recycles the slot (a CAS elects one winner, who clears the
//! histogram). No timer thread, no rotation lock.
//!
//! Queries merge every slot still inside the window — the current, partial
//! sub-window included — so a windowed quantile covers the last
//! `window_secs`-ish seconds of traffic and carries the same
//! one-bucket-width accuracy guarantee as the cumulative histograms.
//! The boundaries are telemetry-grade, not exact: a sample racing a slot
//! recycle can land in either generation, and a slot expires in
//! sub-window granularity.
//!
//! [`WorkloadWindows`] bundles the rings the server actually keeps — one
//! per [`Endpoint`] for end-to-end latency, plus one for WAL fsync latency
//! (the `/readyz` degradation signal) — behind a shared [`WindowClock`].

use super::histogram::{Histogram, HistogramSnapshot};
use super::Endpoint;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-windows per rolling window: enough that an expiring sub-window only
/// drops ~1/4 of the window at once, few enough that a query merges a
/// handful of snapshots.
pub const WINDOW_SLOTS: usize = 4;

/// Translates wall time into sub-window epochs (shared by every ring so
/// "the current window" means the same thing everywhere).
#[derive(Debug)]
pub struct WindowClock {
    started: Instant,
    slot_secs: u64,
}

impl WindowClock {
    /// A clock carving `window_secs` into [`WINDOW_SLOTS`] sub-windows (at
    /// least one second each).
    pub fn new(window_secs: u64) -> Self {
        Self {
            started: Instant::now(),
            slot_secs: (window_secs / WINDOW_SLOTS as u64).max(1),
        }
    }

    /// The effective rolling-window length in seconds (the configured value
    /// rounded to whole sub-windows).
    pub fn window_secs(&self) -> u64 {
        self.slot_secs * WINDOW_SLOTS as u64
    }

    /// Current sub-window ordinal since startup.
    pub fn epoch(&self) -> u64 {
        self.started.elapsed().as_secs() / self.slot_secs
    }

    /// Seconds of traffic the rolling window covers right now: full
    /// sub-windows plus the elapsed part of the current one, clamped to the
    /// uptime (a freshly started server has not seen a whole window yet).
    pub fn covered_secs(&self) -> f64 {
        let uptime = self.started.elapsed().as_secs_f64();
        let in_slot = (uptime - (self.epoch() * self.slot_secs) as f64).max(0.0);
        (((WINDOW_SLOTS as u64 - 1) * self.slot_secs) as f64 + in_slot).min(uptime)
    }
}

/// One ring slot: the sub-window epoch it holds (+1, so `0` means "never
/// written") and that sub-window's histogram.
#[derive(Debug)]
struct WindowSlot {
    stamp: AtomicU64,
    hist: Histogram,
}

/// A ring of [`WINDOW_SLOTS`] histograms over consecutive sub-windows. See
/// the [module docs](self).
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Vec<WindowSlot>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedHistogram {
    /// An empty ring.
    pub fn new() -> Self {
        Self {
            slots: (0..WINDOW_SLOTS)
                .map(|_| WindowSlot {
                    stamp: AtomicU64::new(0),
                    hist: Histogram::new(),
                })
                .collect(),
        }
    }

    /// Record one sample into the sub-window of `epoch`, lazily recycling
    /// the ring slot if it still holds an expired sub-window (one CAS
    /// winner clears it; losers — and samples racing the clear — land in
    /// whichever generation they land in).
    pub fn record_at(&self, epoch: u64, value: u64) {
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let stamp = epoch + 1;
        let seen = slot.stamp.load(Ordering::Relaxed); // relaxed-ok: lazy slot recycling; racers land in either generation (see doc)
        if seen != stamp
            && slot
                .stamp
                .compare_exchange(seen, stamp, Ordering::Relaxed, Ordering::Relaxed) // relaxed-ok: lazy slot recycling; racers land in either generation (see doc)
                .is_ok()
        {
            slot.hist.clear();
        }
        slot.hist.record(value);
    }

    /// Merged snapshot of every sub-window still inside the rolling window
    /// at `epoch` — the current, partial sub-window included, so a windowed
    /// p99 reflects traffic up to "now", not up to the last rotation.
    /// Empty (quantiles answer `None`) when the window saw no samples.
    pub fn merged_at(&self, epoch: u64) -> HistogramSnapshot {
        let window = self.slots.len() as u64;
        let mut merged = HistogramSnapshot::default();
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Relaxed); // relaxed-ok: monitoring read; a racing rotation skews one snapshot
            if stamp == 0 {
                continue;
            }
            let slot_epoch = stamp - 1;
            if slot_epoch > epoch || epoch - slot_epoch >= window {
                continue; // future (racing writer) or expired sub-window
            }
            merged.merge(&slot.hist.snapshot());
        }
        merged
    }
}

/// The server's rolling windows: one latency ring per [`Endpoint`] plus one
/// for WAL fsync latency, on a shared clock.
#[derive(Debug)]
pub struct WorkloadWindows {
    clock: WindowClock,
    endpoints: Vec<WindowedHistogram>,
    fsync: WindowedHistogram,
    /// Executed-batch occupancy (requests per match micro-batch, records
    /// per group-committed ingest batch) — dimensionless, not nanoseconds.
    batch: WindowedHistogram,
}

impl WorkloadWindows {
    /// Windows of `window_secs` (rounded to whole sub-windows, minimum
    /// [`WINDOW_SLOTS`] seconds).
    pub fn new(window_secs: u64) -> Self {
        Self {
            clock: WindowClock::new(window_secs),
            endpoints: Endpoint::ALL
                .iter()
                .map(|_| WindowedHistogram::new())
                .collect(),
            fsync: WindowedHistogram::new(),
            batch: WindowedHistogram::new(),
        }
    }

    /// The effective rolling-window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.clock.window_secs()
    }

    /// The current *full-window* ordinal (sub-window epoch divided by the
    /// ring size) — the rotation clock the top-K sketches and exemplar
    /// rings share, so "this window" means the same period everywhere.
    pub fn window_epoch(&self) -> u64 {
        self.clock.epoch() / WINDOW_SLOTS as u64
    }

    /// Seconds of traffic the window covers right now (denominator of the
    /// `*_rate` series).
    pub fn covered_secs(&self) -> f64 {
        self.clock.covered_secs()
    }

    /// Record one finished request's end-to-end latency.
    pub fn record_request(&self, endpoint: Endpoint, total_ns: u64) {
        self.endpoints[endpoint.index()].record_at(self.clock.epoch(), total_ns);
    }

    /// Record one WAL fsync's latency.
    pub fn record_fsync(&self, ns: u64) {
        self.fsync.record_at(self.clock.epoch(), ns);
    }

    /// Merged latency snapshot of `endpoint` over the rolling window.
    pub fn endpoint_window(&self, endpoint: Endpoint) -> HistogramSnapshot {
        self.endpoints[endpoint.index()].merged_at(self.clock.epoch())
    }

    /// Merged fsync-latency snapshot over the rolling window.
    pub fn fsync_window(&self) -> HistogramSnapshot {
        self.fsync.merged_at(self.clock.epoch())
    }

    /// Record one executed batch's occupancy (a dimensionless size, not a
    /// latency).
    pub fn record_batch(&self, size: u64) {
        self.batch.record_at(self.clock.epoch(), size);
    }

    /// Merged batch-occupancy snapshot over the rolling window. Quantiles
    /// are sizes, so read them through [`HistogramSnapshot::quantile`], not
    /// the `_ms` helpers.
    pub fn batch_window(&self) -> HistogramSnapshot {
        self.batch.merged_at(self.clock.epoch())
    }

    /// Requests/second `count` samples amount to over the covered window.
    pub fn rate(&self, count: u64) -> f64 {
        count as f64 / self.covered_secs().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_windows_answer_empty() {
        let ring = WindowedHistogram::new();
        for epoch in [0, 1, 17, u64::MAX / 2] {
            let merged = ring.merged_at(epoch);
            assert_eq!(merged.count(), 0);
            assert_eq!(merged.quantile(0.99), None);
            assert_eq!(merged.quantile_ms(0.5), 0.0);
        }
        let windows = WorkloadWindows::new(60);
        assert_eq!(windows.endpoint_window(Endpoint::Match).count(), 0);
        assert_eq!(windows.fsync_window().count(), 0);
        assert_eq!(windows.batch_window().count(), 0);
        assert_eq!(windows.rate(0), 0.0);
    }

    #[test]
    fn batch_occupancy_window_records_sizes() {
        let windows = WorkloadWindows::new(60);
        for size in [1, 4, 4, 8] {
            windows.record_batch(size);
        }
        let snap = windows.batch_window();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.quantile(0.5), Some(4));
        assert!(snap.quantile(1.0).unwrap() >= 8);
    }

    #[test]
    fn quantiles_span_a_rotation_boundary() {
        // Samples recorded just before and just after a sub-window boundary
        // are both inside the rolling window: the merged quantile sees them
        // all, exactly as if no rotation had happened.
        let ring = WindowedHistogram::new();
        let reference = Histogram::new();
        for i in 0..100u64 {
            let value = (i + 1) * 1_000;
            // Half the samples land in epoch 6, half in epoch 7.
            ring.record_at(6 + i % 2, value);
            reference.record(value);
        }
        let merged = ring.merged_at(7);
        assert_eq!(merged.count(), 100);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), reference.snapshot().quantile(q));
        }
        // One epoch later the epoch-6 sub-window is still live...
        assert_eq!(ring.merged_at(8).count(), 100);
        // ...but WINDOW_SLOTS epochs past it, it has expired.
        assert_eq!(ring.merged_at(6 + WINDOW_SLOTS as u64).count(), 50);
    }

    #[test]
    fn slots_recycle_for_new_epochs() {
        let ring = WindowedHistogram::new();
        for _ in 0..10 {
            ring.record_at(0, 500);
        }
        // Epoch WINDOW_SLOTS maps onto epoch 0's slot: the first write
        // recycles it, so the old generation is gone even from queries that
        // would still have admitted epoch 0 data.
        let epoch = WINDOW_SLOTS as u64;
        ring.record_at(epoch, 9_000);
        let merged = ring.merged_at(epoch);
        assert_eq!(merged.count(), 1);
        assert!(merged.quantile(0.5).unwrap() >= 9_000);

        // Stale epochs older than every live slot contribute nothing.
        assert_eq!(ring.merged_at(epoch + WINDOW_SLOTS as u64).count(), 0);
    }

    #[test]
    fn clock_rounds_to_whole_subwindows() {
        let clock = WindowClock::new(60);
        assert_eq!(clock.window_secs(), 60);
        // Too-small windows clamp to one second per sub-window.
        let tiny = WindowClock::new(1);
        assert_eq!(tiny.window_secs(), WINDOW_SLOTS as u64);
        // 30s / 4 slots rounds down to 7s sub-windows -> 28s effective.
        let odd = WindowClock::new(30);
        assert_eq!(odd.window_secs(), 28);
        assert!(clock.covered_secs() >= 0.0);
        let windows = WorkloadWindows::new(60);
        assert_eq!(windows.window_epoch(), 0);
    }
}
