//! Slow-request exemplars: keep the traces of the worst requests around.
//!
//! Sampled tracing (PR 6) answers "what does a typical request look like";
//! the question after an SLO blip is "show me the request that just blew
//! it". An [`ExemplarRing`] retains the full span [`Trace`]s of the
//! slowest requests of the current rolling window (plus the previous
//! window, so a spike remains inspectable for a while after it ends),
//! retrievable as JSON from `GET /debug/slow` — no log spelunking, no
//! hoping the sampler picked the outlier.
//!
//! Cost discipline: admission is pre-filtered by two relaxed atomic loads
//! (the floor — the slowest ring's *fastest* member); only requests that
//! would actually displace an exemplar take the ring's mutex. Under steady
//! traffic almost every request fails the floor check and pays nothing.

use super::trace::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Wall-clock milliseconds since the Unix epoch (for exemplar timestamps).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One retained slow request: the finished trace plus the request facts the
/// trace alone does not carry.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The finished span stack (spans sum to `total_ns`).
    pub trace: Trace,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Wall-clock milliseconds since the Unix epoch at completion.
    pub ts_ms: u64,
}

/// Fixed-capacity ring of the slowest requests per rolling window. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ExemplarRing {
    capacity: usize,
    /// Admission floor: requests at or below this latency cannot enter the
    /// current window's ring. Valid only for the window `floor_stamp`
    /// holds; `0` admits everything (ring not full, or window just
    /// rotated).
    floor_ns: AtomicU64,
    floor_stamp: AtomicU64,
    inner: Mutex<ExemplarWindows>,
}

#[derive(Debug)]
struct ExemplarWindows {
    /// Window epoch of `current`, +1 (`0` = nothing recorded yet).
    stamp: u64,
    current: Vec<Exemplar>,
    previous: Vec<Exemplar>,
}

impl ExemplarRing {
    /// A ring keeping the `capacity` slowest requests per window (`0`
    /// disables exemplars).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            floor_ns: AtomicU64::new(0),
            floor_stamp: AtomicU64::new(0),
            inner: Mutex::new(ExemplarWindows {
                stamp: 0,
                current: Vec::new(),
                previous: Vec::new(),
            }),
        }
    }

    /// Whether the ring retains anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Cheap pre-check (two relaxed loads) for whether a request of
    /// `total_ns` could enter the window `window_epoch` — lets callers skip
    /// building the [`Exemplar`] (string clones) for the overwhelming
    /// majority of requests. Racy in the admitting direction only: a `true`
    /// may still be rejected under the lock, a `false` is always final.
    pub fn admits(&self, window_epoch: u64, total_ns: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        // relaxed-ok: advisory admission filter; the mutex path re-checks
        let sealed_stamp = self.floor_stamp.load(Ordering::Relaxed);
        // relaxed-ok: advisory admission filter; the mutex path re-checks
        let floor_ns = self.floor_ns.load(Ordering::Relaxed);
        !(sealed_stamp == window_epoch + 1 && total_ns <= floor_ns)
    }

    /// Offer one finished request to the window `window_epoch`. Fast-path
    /// rejects (two relaxed loads) when the request is no slower than the
    /// current window's floor; otherwise displaces the fastest retained
    /// exemplar under the mutex.
    pub fn offer(&self, window_epoch: u64, exemplar: Exemplar) {
        if !self.admits(window_epoch, exemplar.total_ns) {
            return;
        }
        let stamp = window_epoch + 1;
        let mut inner = crate::sync::lock_unpoisoned(&self.inner);
        self.advance(&mut inner, stamp);
        if inner.current.len() < self.capacity {
            inner.current.push(exemplar);
        } else {
            // The ring is at capacity (> 0), so a fastest entry exists; the
            // `else` keeps the path panic-free regardless.
            let Some((at, fastest)) = inner
                .current
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_ns)
                .map(|(i, e)| (i, e.total_ns))
            else {
                return;
            };
            if exemplar.total_ns <= fastest {
                return;
            }
            inner.current[at] = exemplar;
        }
        if inner.current.len() == self.capacity {
            // Publish the new floor for the fast-path filter.
            let floor = inner.current.iter().map(|e| e.total_ns).min().unwrap_or(0);
            // relaxed-ok: advisory admission filter; the mutex path re-checks
            self.floor_ns.store(floor, Ordering::Relaxed);
            // relaxed-ok: advisory admission filter; the mutex path re-checks
            self.floor_stamp.store(stamp, Ordering::Relaxed);
        }
    }

    /// The retained exemplars as of `window_epoch` — current window first,
    /// then the previous one, each slowest-first.
    pub fn snapshot_at(&self, window_epoch: u64) -> Vec<Exemplar> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let mut inner = crate::sync::lock_unpoisoned(&self.inner);
        self.advance(&mut inner, window_epoch + 1);
        let mut current = inner.current.clone();
        let mut previous = inner.previous.clone();
        drop(inner);
        current.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        previous.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        current.extend(previous);
        current
    }

    /// Lazily rotate so `current` belongs to the window of `stamp`: one
    /// window forward keeps the old ring as `previous`, a larger jump
    /// empties both. Resets the admission floor either way.
    fn advance(&self, inner: &mut ExemplarWindows, stamp: u64) {
        if inner.stamp == stamp {
            return;
        }
        let old = std::mem::take(&mut inner.current);
        inner.previous = if inner.stamp + 1 == stamp {
            old
        } else {
            Vec::new()
        };
        inner.stamp = stamp;
        // relaxed-ok: advisory admission filter; the mutex path re-checks
        self.floor_ns.store(0, Ordering::Relaxed);
        // relaxed-ok: advisory admission filter; the mutex path re-checks
        self.floor_stamp.store(stamp, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar(id: u64, total_ns: u64) -> Exemplar {
        let mut trace = Trace::new(id, false);
        trace.finish(total_ns);
        Exemplar {
            trace,
            method: "POST".into(),
            path: "/match".into(),
            status: 200,
            total_ns,
            ts_ms: 0,
        }
    }

    #[test]
    fn ring_keeps_the_slowest_of_the_window() {
        let ring = ExemplarRing::new(3);
        assert!(ring.enabled());
        for (id, ns) in [
            (1, 500),
            (2, 9_000),
            (3, 100),
            (4, 7_000),
            (5, 8_000),
            (6, 50),
        ] {
            ring.offer(0, exemplar(id, ns));
        }
        let kept = ring.snapshot_at(0);
        let ids: Vec<u64> = kept.iter().map(|e| e.trace.id).collect();
        // Slowest three, slowest first; the fast requests never displaced
        // anything.
        assert_eq!(ids, [2, 5, 4]);
        assert_eq!(kept[0].total_ns, 9_000);

        let off = ExemplarRing::new(0);
        assert!(!off.enabled());
        off.offer(0, exemplar(1, 1));
        assert!(off.snapshot_at(0).is_empty());
    }

    #[test]
    fn windows_rotate_and_previous_stays_visible() {
        let ring = ExemplarRing::new(2);
        ring.offer(3, exemplar(1, 1_000));
        ring.offer(3, exemplar(2, 2_000));
        ring.offer(3, exemplar(3, 3_000)); // displaces id 1

        // Next window: the previous window's exemplars remain retrievable
        // behind the current (empty, then refilling) window's.
        ring.offer(4, exemplar(9, 10));
        let kept = ring.snapshot_at(4);
        let ids: Vec<u64> = kept.iter().map(|e| e.trace.id).collect();
        assert_eq!(ids, [9, 3, 2]);

        // A fast request is admitted again after rotation reset the floor.
        assert_eq!(kept[0].total_ns, 10);

        // Jumping windows clears everything.
        assert!(ring.snapshot_at(9).is_empty());
    }
}
