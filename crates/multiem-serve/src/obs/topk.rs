//! Space-saving heavy-hitter sketches ("which keys are hot right now").
//!
//! A [`SpaceSaving`] sketch tracks the approximate top-K of an unbounded
//! key stream in O(K) memory (Metwally et al.'s *space-saving* algorithm):
//! a hit on a tracked key increments it; a hit on an untracked key, once
//! the sketch is full, **takes over** the minimum entry — inheriting its
//! count as the new entry's error bound. The classic guarantees follow:
//! every reported `count` overestimates the key's true frequency by at most
//! its `error`, and any key whose true frequency exceeds `N / K` (N hits
//! total) is guaranteed to be in the sketch. With K comfortably above the
//! number of genuinely hot keys — the default is 16 against a handful of
//! hot sources — the top entries are exact.
//!
//! [`WindowedTopK`] scopes a sketch to the rolling analytics window: hits
//! land in a *current* sketch that rotates to *previous* when the window
//! epoch advances (lazily, on the next hit or query), so `/debug/top`
//! answers "hottest this window" with last window still visible — not a
//! lifetime ranking frozen around yesterday's batch import.
//!
//! The server feeds three of these from the dispatch path — ingest source
//! keys (the shard-routing token), routed shard ids, and match-result
//! entities — at the cost of one short mutex over a K-entry vector per
//! hit.

use std::sync::Mutex;

/// One tracked heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The key (source token, shard id, entity id, ...).
    pub key: String,
    /// Estimated hits: true frequency <= `count` <= true frequency +
    /// `error`.
    pub count: u64,
    /// Overestimation bound inherited from the entry this key took over
    /// (`0` = the count is exact).
    pub error: u64,
}

/// A fixed-capacity space-saving sketch. See the [module docs](self).
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<HeavyHitter>,
}

impl SpaceSaving {
    /// An empty sketch tracking at most `capacity` keys (`0` = a no-op
    /// sketch that records nothing).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Count one occurrence of `key`. O(capacity) scan — capacities are
    /// small (16 by default) so this stays cheaper than a hash lookup would
    /// make it look.
    pub fn hit(&mut self, key: &str) {
        if self.capacity == 0 {
            return;
        }
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            entry.count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(HeavyHitter {
                key: key.to_string(),
                count: 1,
                error: 0,
            });
            return;
        }
        // Full: the new key takes over the minimum entry, inheriting its
        // count as the error bound (the key may have occurred up to that
        // many times while untracked — never more, or it would have evicted
        // its way in earlier).
        // A full sketch (capacity > 0) always has a minimum entry; the
        // `else` keeps the path panic-free — an empty sketch drops the hit.
        let Some(min) = self.entries.iter_mut().min_by_key(|e| e.count) else {
            return;
        };
        min.error = min.count;
        min.count += 1;
        min.key.clear();
        min.key.push_str(key);
    }

    /// Tracked entries, hottest first (ties broken by smaller error, i.e.
    /// higher confidence).
    pub fn top(&self) -> Vec<HeavyHitter> {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| b.count.cmp(&a.count).then(a.error.cmp(&b.error)));
        entries
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch tracks nothing yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A [`SpaceSaving`] pair scoped to the rolling analytics window: `current`
/// rotates to `previous` when the window epoch advances.
#[derive(Debug)]
pub struct WindowedTopK {
    capacity: usize,
    inner: Mutex<TopKWindows>,
}

#[derive(Debug)]
struct TopKWindows {
    /// Window epoch of `current`, +1 (`0` = nothing recorded yet).
    stamp: u64,
    current: SpaceSaving,
    previous: SpaceSaving,
}

impl TopKWindows {
    /// Lazily rotate so `current` belongs to `window_epoch`: one epoch
    /// forward keeps the old sketch as `previous`; a larger jump (idle
    /// windows in between) empties both.
    fn advance(&mut self, capacity: usize, window_epoch: u64) {
        let stamp = window_epoch + 1;
        if self.stamp == stamp {
            return;
        }
        let old = std::mem::replace(&mut self.current, SpaceSaving::new(capacity));
        self.previous = if self.stamp + 1 == stamp {
            old
        } else {
            SpaceSaving::new(capacity)
        };
        self.stamp = stamp;
    }
}

impl WindowedTopK {
    /// An empty windowed sketch of `capacity` keys (`0` disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(TopKWindows {
                stamp: 0,
                current: SpaceSaving::new(capacity),
                previous: SpaceSaving::new(capacity),
            }),
        }
    }

    /// Whether the sketch records anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Count one occurrence of `key` in the window `window_epoch`.
    pub fn hit_at(&self, window_epoch: u64, key: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = crate::sync::lock_unpoisoned(&self.inner);
        inner.advance(self.capacity, window_epoch);
        inner.current.hit(key);
    }

    /// `(current, previous)` heavy hitters as of `window_epoch`, hottest
    /// first.
    pub fn top_at(&self, window_epoch: u64) -> (Vec<HeavyHitter>, Vec<HeavyHitter>) {
        if self.capacity == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut inner = crate::sync::lock_unpoisoned(&self.inner);
        inner.advance(self.capacity, window_epoch);
        (inner.current.top(), inner.previous.top())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    #[test]
    fn small_streams_are_counted_exactly() {
        let mut sketch = SpaceSaving::new(8);
        for key in ["a", "b", "a", "c", "a", "b"] {
            sketch.hit(key);
        }
        let top = sketch.top();
        assert_eq!(
            top[0],
            HeavyHitter {
                key: "a".into(),
                count: 3,
                error: 0
            }
        );
        assert_eq!(
            top[1],
            HeavyHitter {
                key: "b".into(),
                count: 2,
                error: 0
            }
        );
        assert_eq!(
            top[2],
            HeavyHitter {
                key: "c".into(),
                count: 1,
                error: 0
            }
        );
        assert_eq!(sketch.len(), 3);
        // A zero-capacity sketch records nothing.
        let mut off = SpaceSaving::new(0);
        off.hit("a");
        assert!(off.is_empty());
    }

    #[test]
    fn eviction_keeps_the_space_saving_guarantees_on_zipf() {
        // A Zipf-ish stream over far more keys than the sketch holds: every
        // estimate must bracket the exact count (count - error <= exact <=
        // count), and every key hot enough for the N/K guarantee must be
        // tracked — with the genuinely hot head ranked correctly.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut sketch = SpaceSaving::new(32);
        let mut exact: HashMap<String, u64> = HashMap::new();
        let total = 20_000u64;
        for _ in 0..total {
            // Zipf-ish: rank r with probability proportional to 1/(r+1).
            let r = loop {
                let r = rng.gen_range(0..400u32);
                if rng.gen_range(0.0..1.0) < 1.0 / (f64::from(r) + 1.0) {
                    break r;
                }
            };
            let key = format!("key-{r}");
            sketch.hit(&key);
            *exact.entry(key).or_insert(0) += 1;
        }
        let top = sketch.top();
        assert_eq!(top.len(), 32);
        for entry in &top {
            let true_count = exact.get(&entry.key).copied().unwrap_or(0);
            assert!(
                entry.count >= true_count && entry.count - entry.error <= true_count,
                "{}: estimate {}±{} does not bracket exact {true_count}",
                entry.key,
                entry.count,
                entry.error
            );
        }
        // Guarantee: any key with exact frequency > N/K is in the sketch.
        let threshold = total / 32;
        let tracked: Vec<&str> = top.iter().map(|e| e.key.as_str()).collect();
        for (key, &count) in &exact {
            if count > threshold {
                assert!(tracked.contains(&key.as_str()), "{key} ({count}) missing");
            }
        }
        // The hottest key of a Zipf stream is unambiguous: rank 0.
        assert_eq!(top[0].key, "key-0");
    }

    #[test]
    fn windows_rotate_current_into_previous() {
        let topk = WindowedTopK::new(4);
        assert!(topk.enabled());
        topk.hit_at(0, "alpha");
        topk.hit_at(0, "alpha");
        topk.hit_at(0, "beta");
        let (current, previous) = topk.top_at(0);
        assert_eq!(current[0].key, "alpha");
        assert!(previous.is_empty());

        // Next window: the old sketch becomes `previous`.
        topk.hit_at(1, "gamma");
        let (current, previous) = topk.top_at(1);
        assert_eq!(current.len(), 1);
        assert_eq!(current[0].key, "gamma");
        assert_eq!(previous[0].key, "alpha");

        // Skipping windows (idle gap) clears both.
        let (current, previous) = topk.top_at(5);
        assert!(current.is_empty());
        assert!(previous.is_empty());

        let off = WindowedTopK::new(0);
        assert!(!off.enabled());
        off.hit_at(0, "x");
        assert_eq!(off.top_at(0), (Vec::new(), Vec::new()));
    }
}
