//! Leveled JSON-lines structured logging.
//!
//! A [`Logger`] writes one JSON object per line — `{"ts_ms": ..., "level":
//! "warn", "event": "wal_torn_tail", ...fields}` — to stderr or a file,
//! replacing the serving layer's historical bare `eprintln!` calls with
//! machine-parseable output. Levels filter at the call site (one integer
//! compare before any field is rendered), so `debug` events cost nothing at
//! the default `info` level.
//!
//! The same type backs the access log (`--access-log PATH`): an access
//! [`Logger`] is just a file-bound logger whose every line is an `access`
//! event, one per request.
//!
//! File sinks rotate by size when asked (`--log-rotate-bytes`): past the
//! threshold the live file becomes `<path>.1`, older generations shift up
//! (the oldest beyond `--log-rotate-keep` is dropped), and the fresh file
//! opens with a `log_rotated` event — so a chatty access log can run
//! unattended without eating the disk.

use serde::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The server cannot do what was asked of it.
    Error,
    /// Something surprising that the server worked around.
    Warn,
    /// Lifecycle events: startup, checkpoints, shutdown, sampled traces.
    Info,
    /// Per-request detail (access lines on the main logger, stage dumps).
    Debug,
}

impl Level {
    /// Parse a `--log-level` CLI value.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level `{other}` (expected error, warn, info or debug)"
            )),
        }
    }

    /// The level's lowercase name (as written into every line).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where a logger writes.
#[derive(Debug)]
enum Sink {
    Stderr,
    File(FileSink),
}

/// A file destination with optional size-based rotation
/// (`--log-rotate-bytes`): when the live file passes `rotate_bytes`, it is
/// renamed to `<path>.1` (older generations shift to `.2`, `.3`, ... up to
/// `keep`, the oldest dropped) and a fresh file takes its place, opened
/// with a `log_rotated` event as its first line.
#[derive(Debug)]
struct FileSink {
    writer: BufWriter<File>,
    path: PathBuf,
    /// Bytes written to the live file (seeded from its length on open, so
    /// rotation thresholds survive restarts of an appending server).
    bytes: u64,
    /// Rotate past this many bytes (`0` = never rotate).
    rotate_bytes: u64,
    /// Rotated generations kept (at least 1 when rotation is on).
    keep: usize,
}

impl FileSink {
    /// The rotated name of generation `n` (`server.log` -> `server.log.2`).
    fn generation(&self, n: usize) -> PathBuf {
        PathBuf::from(format!("{}.{n}", self.path.display()))
    }

    /// Shift the generations up, move the live file to `.1` and reopen a
    /// fresh one. Best-effort like all logging: a failed rename keeps
    /// writing to the old file rather than taking the server down.
    fn rotate(&mut self) {
        let _ = self.writer.flush();
        let keep = self.keep.max(1);
        let _ = std::fs::remove_file(self.generation(keep));
        for n in (1..keep).rev() {
            // lint:allow(fsync-before-rename): best-effort log rotation — losing a tail of telemetry lines in a crash is acceptable, an fsync per rotation is not
            let _ = std::fs::rename(self.generation(n), self.generation(n + 1));
        }
        // lint:allow(fsync-before-rename): best-effort log rotation — losing a tail of telemetry lines in a crash is acceptable, an fsync per rotation is not
        if std::fs::rename(&self.path, self.generation(1)).is_err() {
            return;
        }
        let Ok(file) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            return;
        };
        self.writer = BufWriter::new(file);
        self.bytes = 0;
        // First line of the fresh file records the rotation itself (written
        // directly: the caller already holds the sink mutex).
        let line = render_line(
            Level::Info,
            "log_rotated",
            &[
                (
                    "rotated_to",
                    Value::Str(self.generation(1).display().to_string()),
                ),
                ("keep", Value::UInt(keep as u64)),
            ],
        );
        let _ = writeln!(self.writer, "{line}");
        let _ = self.writer.flush();
        self.bytes += line.len() as u64 + 1;
    }
}

/// A leveled JSON-lines logger. Cheap to share (`Arc`), cheap to skip
/// (level check first), serialized line-at-a-time under a mutex so
/// concurrent workers never interleave bytes.
#[derive(Debug)]
pub struct Logger {
    level: Level,
    sink: Mutex<Sink>,
}

impl Logger {
    /// A logger writing to stderr at `level`.
    pub fn stderr(level: Level) -> Self {
        Self {
            level,
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// A logger appending to the file at `path` at `level` (no rotation).
    pub fn file(level: Level, path: &Path) -> io::Result<Self> {
        Self::rotating_file(level, path, 0, 0)
    }

    /// A file logger that rotates past `rotate_bytes` bytes, keeping `keep`
    /// rotated generations (`<path>.1` ... `<path>.keep`). `rotate_bytes ==
    /// 0` disables rotation.
    pub fn rotating_file(
        level: Level,
        path: &Path,
        rotate_bytes: u64,
        keep: usize,
    ) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Self {
            level,
            sink: Mutex::new(Sink::File(FileSink {
                writer: BufWriter::new(file),
                path: path.to_path_buf(),
                bytes,
                rotate_bytes,
                keep,
            })),
        })
    }

    /// Whether `level` would be written (callers can skip building fields).
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Write one event line: `{"ts_ms":..., "level":..., "event":...,
    /// ...fields}` (field order preserved). Silently drops lines below the
    /// configured level and swallows I/O errors — logging must never take
    /// the serving path down.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let line = render_line(level, event, fields);
        let mut sink = crate::sync::lock_unpoisoned(&self.sink);
        match &mut *sink {
            Sink::Stderr => {
                let stderr = io::stderr();
                let mut out = stderr.lock();
                let _ = writeln!(out, "{line}");
            }
            Sink::File(file) => {
                let _ = writeln!(file.writer, "{line}");
                // One flush per line keeps `tail -f` live; lines are small
                // and the page cache absorbs the write.
                let _ = file.writer.flush();
                file.bytes += line.len() as u64 + 1;
                if file.rotate_bytes > 0 && file.bytes >= file.rotate_bytes {
                    file.rotate();
                }
            }
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Error, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Debug, event, fields);
    }
}

/// Render one event line: `{"ts_ms":..., "level":..., "event":...,
/// ...fields}` (field order preserved).
fn render_line(level: Level, event: &str, fields: &[(&str, Value)]) -> String {
    let mut entries: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 3);
    entries.push(("ts_ms".into(), Value::UInt(now_ms())));
    entries.push(("level".into(), Value::Str(level.name().into())));
    entries.push(("event".into(), Value::Str(event.into())));
    for (name, value) in fields {
        entries.push(((*name).into(), value.clone()));
    }
    serde_json::to_string(&Value::Map(entries)).unwrap_or_else(|_| "{}".into())
}

/// Milliseconds since the Unix epoch.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("warn"), Ok(Level::Warn));
        assert!(Level::parse("verbose").is_err());
        assert_eq!(Level::Debug.name(), "debug");
    }

    #[test]
    fn file_logger_writes_parseable_json_lines_and_filters() {
        let dir = std::env::temp_dir().join(format!("multiem-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.log");
        let logger = Logger::file(Level::Info, &path).unwrap();
        assert!(logger.enabled(Level::Warn));
        assert!(!logger.enabled(Level::Debug));
        logger.info(
            "startup",
            &[
                ("shards", Value::UInt(4)),
                ("addr", Value::Str("127.0.0.1:0".into())),
            ],
        );
        logger.debug("dropped", &[]); // below level: never written
        logger.warn("wal_torn_tail", &[("shard", Value::UInt(2))]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "debug line must be filtered: {text}");
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        let field = |name: &str| {
            first
                .as_map()
                .unwrap()
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("level"), Some(Value::Str("info".into())));
        assert_eq!(field("event"), Some(Value::Str("startup".into())));
        // The parser may hand integers back as Int or UInt; compare values.
        assert_eq!(field("shards").and_then(|v| v.as_u64()), Some(4));
        assert!(matches!(field("ts_ms").and_then(|v| v.as_u64()), Some(ms) if ms > 0));
        assert!(lines[1].contains("\"event\":\"wal_torn_tail\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_based_rotation_shifts_generations_and_logs_the_event() {
        let dir = std::env::temp_dir().join(format!("multiem-rotate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        // Tiny threshold: every line (~60-80 bytes with its envelope)
        // triggers a rotation, exercising the generation shift repeatedly.
        let logger = Logger::rotating_file(Level::Info, &path, 64, 2).unwrap();
        for i in 0..5u64 {
            logger.info("access", &[("request_id", Value::UInt(i))]);
        }
        let gen = |n: usize| PathBuf::from(format!("{}.{n}", path.display()));
        assert!(path.exists(), "live file must exist");
        assert!(gen(1).exists(), "first rotated generation must exist");
        assert!(gen(2).exists(), "second rotated generation must exist");
        assert!(!gen(3).exists(), "generations beyond keep must be dropped");
        // The live file's first line is the rotation event of the rotation
        // that created it.
        let live = std::fs::read_to_string(&path).unwrap();
        assert!(
            live.lines()
                .next()
                .unwrap()
                .contains("\"event\":\"log_rotated\""),
            "fresh file must open with the rotation event: {live}"
        );
        // Every line everywhere is still one parseable JSON object.
        for text in [live, std::fs::read_to_string(gen(1)).unwrap()] {
            for line in text.lines() {
                serde_json::from_str::<Value>(line).unwrap();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrotated_file_logger_never_rotates() {
        let dir =
            std::env::temp_dir().join(format!("multiem-norotate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.log");
        let logger = Logger::file(Level::Info, &path).unwrap();
        for i in 0..50u64 {
            logger.info("event", &[("i", Value::UInt(i))]);
        }
        assert!(!PathBuf::from(format!("{}.1", path.display())).exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }
}
