//! Leveled JSON-lines structured logging.
//!
//! A [`Logger`] writes one JSON object per line — `{"ts_ms": ..., "level":
//! "warn", "event": "wal_torn_tail", ...fields}` — to stderr or a file,
//! replacing the serving layer's historical bare `eprintln!` calls with
//! machine-parseable output. Levels filter at the call site (one integer
//! compare before any field is rendered), so `debug` events cost nothing at
//! the default `info` level.
//!
//! The same type backs the access log (`--access-log PATH`): an access
//! [`Logger`] is just a file-bound logger whose every line is an `access`
//! event, one per request.

use serde::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The server cannot do what was asked of it.
    Error,
    /// Something surprising that the server worked around.
    Warn,
    /// Lifecycle events: startup, checkpoints, shutdown, sampled traces.
    Info,
    /// Per-request detail (access lines on the main logger, stage dumps).
    Debug,
}

impl Level {
    /// Parse a `--log-level` CLI value.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level `{other}` (expected error, warn, info or debug)"
            )),
        }
    }

    /// The level's lowercase name (as written into every line).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where a logger writes.
#[derive(Debug)]
enum Sink {
    Stderr,
    File(BufWriter<File>),
}

/// A leveled JSON-lines logger. Cheap to share (`Arc`), cheap to skip
/// (level check first), serialized line-at-a-time under a mutex so
/// concurrent workers never interleave bytes.
#[derive(Debug)]
pub struct Logger {
    level: Level,
    sink: Mutex<Sink>,
}

impl Logger {
    /// A logger writing to stderr at `level`.
    pub fn stderr(level: Level) -> Self {
        Self {
            level,
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// A logger appending to the file at `path` at `level`.
    pub fn file(level: Level, path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            level,
            sink: Mutex::new(Sink::File(BufWriter::new(file))),
        })
    }

    /// Whether `level` would be written (callers can skip building fields).
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Write one event line: `{"ts_ms":..., "level":..., "event":...,
    /// ...fields}` (field order preserved). Silently drops lines below the
    /// configured level and swallows I/O errors — logging must never take
    /// the serving path down.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 3);
        entries.push(("ts_ms".into(), Value::UInt(now_ms())));
        entries.push(("level".into(), Value::Str(level.name().into())));
        entries.push(("event".into(), Value::Str(event.into())));
        for (name, value) in fields {
            entries.push(((*name).into(), value.clone()));
        }
        let line = serde_json::to_string(&Value::Map(entries)).unwrap_or_else(|_| "{}".into());
        let mut sink = self.sink.lock().expect("log sink poisoned");
        match &mut *sink {
            Sink::Stderr => {
                let stderr = io::stderr();
                let mut out = stderr.lock();
                let _ = writeln!(out, "{line}");
            }
            Sink::File(writer) => {
                let _ = writeln!(writer, "{line}");
                // One flush per line keeps `tail -f` live; lines are small
                // and the page cache absorbs the write.
                let _ = writer.flush();
            }
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Error, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Debug, event, fields);
    }
}

/// Milliseconds since the Unix epoch.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("warn"), Ok(Level::Warn));
        assert!(Level::parse("verbose").is_err());
        assert_eq!(Level::Debug.name(), "debug");
    }

    #[test]
    fn file_logger_writes_parseable_json_lines_and_filters() {
        let dir = std::env::temp_dir().join(format!("multiem-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.log");
        let logger = Logger::file(Level::Info, &path).unwrap();
        assert!(logger.enabled(Level::Warn));
        assert!(!logger.enabled(Level::Debug));
        logger.info(
            "startup",
            &[
                ("shards", Value::UInt(4)),
                ("addr", Value::Str("127.0.0.1:0".into())),
            ],
        );
        logger.debug("dropped", &[]); // below level: never written
        logger.warn("wal_torn_tail", &[("shard", Value::UInt(2))]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "debug line must be filtered: {text}");
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        let field = |name: &str| {
            first
                .as_map()
                .unwrap()
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("level"), Some(Value::Str("info".into())));
        assert_eq!(field("event"), Some(Value::Str("startup".into())));
        // The parser may hand integers back as Int or UInt; compare values.
        assert_eq!(field("shards").and_then(|v| v.as_u64()), Some(4));
        assert!(matches!(field("ts_ms").and_then(|v| v.as_u64()), Some(ms) if ms > 0));
        assert!(lines[1].contains("\"event\":\"wal_torn_tail\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
