//! Dependency-free observability for the serving stack.
//!
//! Before this layer, the only latency numbers came from the load
//! generator's client-side clock and the server's logging story was three
//! bare `eprintln!` calls. This module gives the server the means to
//! measure itself, cheaply enough to stay on by default:
//!
//! * [`registry`] — named counter/gauge/histogram families behind plain
//!   atomics, rendered as Prometheus text exposition by `GET /metrics`.
//!   Scraping takes only the registry's own mutex — never a shard or WAL
//!   lock;
//! * [`histogram`] — lock-free log-linear latency histograms, mergeable
//!   across I/O loops and worker threads, quantile-queried with the same
//!   nearest-rank rule as [`crate::metrics::percentile_ms`];
//! * [`trace`] — per-request span stacks over the pipeline stages (parse →
//!   queue-wait → fan-out → ANN search → rank-merge → WAL append → fsync →
//!   apply → respond), sampled by `--trace-sample-rate` and force-emitted
//!   past `--slow-request-ms`;
//! * [`log`] — a leveled JSON-lines logger (`--log-level`, `--log-file`)
//!   plus an optional per-request access log (`--access-log`), both with
//!   size-based rotation (`--log-rotate-bytes`).
//!
//! On top of the cumulative layer sits the **workload-analytics** layer —
//! the live-diagnosis counterpart to lifetime counters:
//!
//! * [`window`] — rolling time-window telemetry: rings of the lock-free
//!   histograms rotated on a coarse epoch tick, so `/metrics` and
//!   `GET /debug/window` answer rates and p50/p99 *over the last
//!   `--window-secs` seconds* instead of since startup;
//! * [`topk`] — space-saving heavy-hitter sketches over ingest sources,
//!   routed shards and match-result entities (`GET /debug/top`);
//! * [`exemplar`] — a fixed ring of the slowest requests' full span traces
//!   per window (`GET /debug/slow`).
//!
//! [`Telemetry`] bundles all of it and lives in the server state. The
//! always-on part (request counters) is a relaxed `fetch_add` per request;
//! everything with measurable cost — histograms, traces, the access log,
//! the analytics layer — sits behind the `enabled` flag that
//! `--no-telemetry` clears, which is what the CI overhead gate
//! (`BENCH_obs.json`, ≤5%) compares against.

pub mod exemplar;
pub mod histogram;
pub mod log;
pub mod registry;
pub mod topk;
pub mod trace;
pub mod window;

pub use exemplar::{Exemplar, ExemplarRing};
pub use histogram::{Histogram, HistogramSnapshot};
pub use log::{Level, Logger};
pub use registry::{Counter, Gauge, Registry};
pub use topk::{HeavyHitter, SpaceSaving, WindowedTopK};
pub use trace::{Stage, Trace, Tracer};
pub use window::{WindowedHistogram, WorkloadWindows};

use serde::Value;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The crate version baked into `/healthz` and `multiem_build_info`.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Observability configuration (the `--log-level` / `--access-log` /
/// `--trace-sample-rate` / `--slow-request-ms` / `--no-telemetry` flags).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch for the measurable-cost telemetry (histograms, traces,
    /// access log). `false` is `--no-telemetry`: counters stay on, the rest
    /// is skipped — the baseline of the CI overhead gate.
    pub telemetry: bool,
    /// Minimum level the structured logger writes.
    pub log_level: Level,
    /// Structured-log destination (`None` = stderr).
    pub log_file: Option<PathBuf>,
    /// Access-log path; `None` disables per-request access lines.
    pub access_log: Option<PathBuf>,
    /// Fraction of requests whose traces are emitted (deterministic
    /// every-Nth; `0.0` disables sampling).
    pub trace_sample_rate: f64,
    /// Force-emit the trace of any request at least this slow (`0`
    /// disables the threshold).
    pub slow_request_ms: u64,
    /// Rolling analytics window length in seconds (`--window-secs`); `0`
    /// disables the whole analytics layer (windows, top-K, exemplars).
    pub window_secs: u64,
    /// Heavy-hitter sketch capacity per window (`--topk`; `0` disables).
    pub topk: usize,
    /// Slow-request exemplars retained per window (`--exemplars`; `0`
    /// disables).
    pub exemplars: usize,
    /// `/readyz` degrades (503) past this many in-flight ingest records
    /// (`0` disables the check).
    pub ready_max_backlog: u64,
    /// `/readyz` degrades (503) past this windowed p99 fsync latency in
    /// milliseconds (`0` disables the check).
    pub ready_max_fsync_ms: u64,
    /// Rotate `--log-file`/`--access-log` once they reach this many bytes
    /// (`0` disables rotation).
    pub log_rotate_bytes: u64,
    /// Rotated generations kept per log file.
    pub log_rotate_keep: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            telemetry: true,
            log_level: Level::Info,
            log_file: None,
            access_log: None,
            trace_sample_rate: 0.0,
            slow_request_ms: 0,
            window_secs: 60,
            topk: 16,
            exemplars: 8,
            ready_max_backlog: 0,
            ready_max_fsync_ms: 0,
            log_rotate_bytes: 0,
            log_rotate_keep: 3,
        }
    }
}

/// Route classes the request metrics are labelled by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /readyz`.
    Readyz,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/*` (introspection surface).
    Debug,
    /// `POST /records` (ingest).
    Records,
    /// `DELETE /records/{id}` and `POST /records/delete`.
    RecordsDelete,
    /// `POST /match`.
    Match,
    /// `POST /snapshot` (checkpoint).
    Snapshot,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// Anything else (404s, bad methods).
    Other,
}

impl Endpoint {
    /// Number of endpoint classes.
    pub const COUNT: usize = 11;

    /// All endpoint classes, in label order.
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Healthz,
        Endpoint::Readyz,
        Endpoint::Stats,
        Endpoint::Metrics,
        Endpoint::Debug,
        Endpoint::Records,
        Endpoint::RecordsDelete,
        Endpoint::Match,
        Endpoint::Snapshot,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Readyz => "readyz",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
            Endpoint::Records => "records",
            Endpoint::RecordsDelete => "records_delete",
            Endpoint::Match => "match",
            Endpoint::Snapshot => "snapshot",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    /// Classify a request (mirrors the server's route table).
    pub fn of(method: &str, path: &str) -> Endpoint {
        match (method, path) {
            ("GET", "/healthz") => Endpoint::Healthz,
            ("GET", "/readyz") => Endpoint::Readyz,
            ("GET", "/stats") => Endpoint::Stats,
            ("GET", "/metrics") => Endpoint::Metrics,
            ("GET", p) if p.starts_with("/debug/") => Endpoint::Debug,
            ("POST", "/records") => Endpoint::Records,
            ("POST", "/records/delete") => Endpoint::RecordsDelete,
            ("DELETE", p) if p.starts_with("/records/") => Endpoint::RecordsDelete,
            ("POST", "/match") => Endpoint::Match,
            ("POST", "/snapshot") => Endpoint::Snapshot,
            ("POST", "/admin/shutdown") => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// `status` label values, coarse classes (429 split out because it is the
/// backpressure signal worth alerting on separately).
const STATUS_CLASSES: [&str; 4] = ["2xx", "4xx", "429", "5xx"];

/// Index into [`STATUS_CLASSES`] for an HTTP status code.
fn status_class(status: u16) -> usize {
    match status {
        429 => 2,
        400..=499 => 1,
        500..=599 => 3,
        _ => 0,
    }
}

/// Every metric handle the serving layer records into, pre-registered with
/// fixed labels so the hot path never allocates or hashes a label string.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `multiem_requests_total{endpoint, status}` — one counter per pair.
    requests: Vec<[Arc<Counter>; STATUS_CLASSES.len()]>,
    /// Records accepted through `POST /records`.
    pub ingested_records: Arc<Counter>,
    /// Records deleted through the delete routes.
    pub deleted_records: Arc<Counter>,
    /// Records refused with a 429.
    pub rejected_records: Arc<Counter>,
    /// Bytes appended to WALs (frames, across shards).
    pub wal_appended_bytes: Arc<Counter>,
    /// WAL `fdatasync` calls.
    pub wal_fsyncs: Arc<Counter>,
    /// Checkpoints committed.
    pub checkpoints: Arc<Counter>,
    /// Match micro-batch occupancy (requests per executed batch; raw
    /// values, not nanoseconds).
    pub batch_size_match: Arc<Histogram>,
    /// Group-committed ingest batch occupancy (records per WAL batch
    /// append; raw values, not nanoseconds).
    pub batch_size_ingest: Arc<Histogram>,
    /// Match batches flushed because they filled to `--batch-max`.
    pub batch_flush_full: Arc<Counter>,
    /// Match batches flushed because `--batch-window-us` expired first.
    pub batch_flush_window: Arc<Counter>,
    /// Connections the acceptor handed to the event loops.
    pub connections_accepted: Arc<Counter>,
    /// Connections the event loops closed.
    pub connections_closed: Arc<Counter>,
    /// End-to-end request latency histograms, one per endpoint.
    request_duration: Vec<Arc<Histogram>>,
    /// Per-stage latency histograms, one per [`Stage`].
    stage_duration: Vec<Arc<Histogram>>,
    /// Seconds since startup (refreshed at scrape time).
    pub uptime_seconds: Arc<Gauge>,
    /// Current WAL bytes across shards (refreshed at scrape time).
    pub wal_bytes: Arc<Gauge>,
    /// Checkpoint epoch from the manifest (refreshed at scrape time).
    pub checkpoint_epoch: Arc<Gauge>,
    /// Records admitted to ingest queues but not yet applied (scrape time).
    pub queue_inflight: Arc<Gauge>,
    /// Record-store hot-cache hits across shards (refreshed at scrape
    /// time).
    pub storage_cache_hits: Arc<Gauge>,
    /// Record-store hot-cache misses across shards (refreshed at scrape
    /// time).
    pub storage_cache_misses: Arc<Gauge>,
    /// Requests/second over the rolling window, one gauge per endpoint
    /// (refreshed at scrape time; `0` with analytics disabled).
    request_rate: Vec<Arc<Gauge>>,
    /// Windowed p50 latency per endpoint, seconds (scrape time).
    window_p50: Vec<Arc<Gauge>>,
    /// Windowed p99 latency per endpoint, seconds (scrape time).
    window_p99: Vec<Arc<Gauge>>,
    /// Windowed p99 WAL fsync latency, seconds (scrape time).
    pub fsync_window_p99: Arc<Gauge>,
}

impl ServeMetrics {
    /// Register every family on `registry` and return the handles.
    pub fn register(registry: &Registry) -> Self {
        let requests = Endpoint::ALL
            .iter()
            .map(|endpoint| {
                STATUS_CLASSES.map(|status| {
                    registry.counter(
                        "multiem_requests_total",
                        "Requests served, by endpoint and status class.",
                        &format!("endpoint=\"{}\",status=\"{status}\"", endpoint.name()),
                    )
                })
            })
            .collect();
        let request_duration = Endpoint::ALL
            .iter()
            .map(|endpoint| {
                registry.histogram(
                    "multiem_request_duration_seconds",
                    "End-to-end request latency (parse through response render).",
                    &format!("endpoint=\"{}\"", endpoint.name()),
                )
            })
            .collect();
        let stage_duration = Stage::ALL
            .iter()
            .map(|stage| {
                registry.histogram(
                    "multiem_stage_duration_seconds",
                    "Per-stage request latency (see the trace span schema).",
                    &format!("stage=\"{}\"", stage.name()),
                )
            })
            .collect();
        let request_rate = Endpoint::ALL
            .iter()
            .map(|endpoint| {
                registry.gauge(
                    "multiem_request_rate",
                    "Requests per second over the rolling analytics window.",
                    &format!("endpoint=\"{}\"", endpoint.name()),
                )
            })
            .collect();
        let window_p50 = Endpoint::ALL
            .iter()
            .map(|endpoint| {
                registry.gauge(
                    "multiem_request_window_p50_seconds",
                    "Median request latency over the rolling analytics window.",
                    &format!("endpoint=\"{}\"", endpoint.name()),
                )
            })
            .collect();
        let window_p99 = Endpoint::ALL
            .iter()
            .map(|endpoint| {
                registry.gauge(
                    "multiem_request_window_p99_seconds",
                    "p99 request latency over the rolling analytics window.",
                    &format!("endpoint=\"{}\"", endpoint.name()),
                )
            })
            .collect();
        let build = registry.gauge(
            "multiem_build_info",
            "Build metadata; the value is always 1.",
            &format!("version=\"{BUILD_VERSION}\""),
        );
        build.set(1.0);
        Self {
            requests,
            ingested_records: registry.counter(
                "multiem_ingested_records_total",
                "Records accepted through POST /records.",
                "",
            ),
            deleted_records: registry.counter(
                "multiem_deleted_records_total",
                "Records deleted through the delete routes.",
                "",
            ),
            rejected_records: registry.counter(
                "multiem_rejected_records_total",
                "Records refused with 429 (ingest backpressure).",
                "",
            ),
            wal_appended_bytes: registry.counter(
                "multiem_wal_appended_bytes_total",
                "Bytes appended to write-ahead logs.",
                "",
            ),
            wal_fsyncs: registry.counter("multiem_wal_fsyncs_total", "WAL fdatasync calls.", ""),
            checkpoints: registry.counter(
                "multiem_checkpoints_total",
                "Checkpoints committed.",
                "",
            ),
            batch_size_match: registry.histogram_raw(
                "multiem_batch_size",
                "Executed-batch occupancy (requests or records per batch).",
                "kind=\"match\"",
            ),
            batch_size_ingest: registry.histogram_raw(
                "multiem_batch_size",
                "Executed-batch occupancy (requests or records per batch).",
                "kind=\"ingest\"",
            ),
            batch_flush_full: registry.counter(
                "multiem_batch_flush_total",
                "Match micro-batches flushed, by reason (full = hit --batch-max, window = --batch-window-us expired).",
                "reason=\"full\"",
            ),
            batch_flush_window: registry.counter(
                "multiem_batch_flush_total",
                "Match micro-batches flushed, by reason (full = hit --batch-max, window = --batch-window-us expired).",
                "reason=\"window\"",
            ),
            connections_accepted: registry.counter(
                "multiem_connections_accepted_total",
                "Connections accepted.",
                "",
            ),
            connections_closed: registry.counter(
                "multiem_connections_closed_total",
                "Connections closed.",
                "",
            ),
            request_duration,
            stage_duration,
            uptime_seconds: registry.gauge(
                "multiem_uptime_seconds",
                "Seconds since server start.",
                "",
            ),
            wal_bytes: registry.gauge("multiem_wal_bytes", "Current WAL size across shards.", ""),
            checkpoint_epoch: registry.gauge(
                "multiem_checkpoint_epoch",
                "Monotonic checkpoint epoch (0 = never checkpointed).",
                "",
            ),
            queue_inflight: registry.gauge(
                "multiem_queue_inflight",
                "Records admitted to ingest queues but not yet applied.",
                "",
            ),
            storage_cache_hits: registry.gauge(
                "multiem_storage_cache_hits",
                "Record-store hot-cache hits across shards.",
                "",
            ),
            storage_cache_misses: registry.gauge(
                "multiem_storage_cache_misses",
                "Record-store hot-cache misses across shards.",
                "",
            ),
            request_rate,
            window_p50,
            window_p99,
            fsync_window_p99: registry.gauge(
                "multiem_fsync_window_p99_seconds",
                "p99 WAL fsync latency over the rolling analytics window.",
                "",
            ),
        }
    }

    /// Publish one endpoint's windowed rate and quantiles (seconds).
    pub fn set_window_gauges(&self, endpoint: Endpoint, rate: f64, p50_s: f64, p99_s: f64) {
        self.request_rate[endpoint.index()].set(rate);
        self.window_p50[endpoint.index()].set(p50_s);
        self.window_p99[endpoint.index()].set(p99_s);
    }

    /// Count one request outcome (always on — one relaxed add).
    pub fn count_request(&self, endpoint: Endpoint, status: u16) {
        self.requests[endpoint.index()][status_class(status)].inc();
    }

    /// Requests counted for `endpoint`, summed over status classes.
    pub fn requests_for(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()]
            .iter()
            .map(|c| c.get())
            .sum()
    }

    /// The end-to-end latency histogram of `endpoint`.
    pub fn duration(&self, endpoint: Endpoint) -> &Histogram {
        &self.request_duration[endpoint.index()]
    }

    /// The latency histogram of `stage`.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stage_duration[stage as usize]
    }
}

/// The counter pair the reactor's I/O threads record into (cheap `Clone` of
/// two `Arc`s, handed to [`crate::net::Reactor::start`]).
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Connections adopted by an event loop.
    pub accepted: Arc<Counter>,
    /// Connections closed by an event loop.
    pub closed: Arc<Counter>,
}

impl NetMetrics {
    /// Detached counters (for tests or reactors without a registry).
    pub fn detached() -> Self {
        Self {
            accepted: Arc::new(Counter::default()),
            closed: Arc::new(Counter::default()),
        }
    }
}

/// The workload-analytics bundle: rolling windows, heavy-hitter sketches,
/// and the slow-request exemplar ring — everything behind `/debug/*`.
/// Present on [`Telemetry`] only when telemetry is on and `--window-secs`
/// is non-zero.
#[derive(Debug)]
pub struct Analytics {
    /// Rolling latency windows (per endpoint + WAL fsync).
    pub windows: WorkloadWindows,
    /// Hottest ingest source tokens this window.
    pub sources: WindowedTopK,
    /// Hottest routed shards this window.
    pub shards: WindowedTopK,
    /// Hottest match-result entities this window.
    pub entities: WindowedTopK,
    /// Slowest requests' full traces this window.
    pub exemplars: ExemplarRing,
}

/// The server's observability bundle: registry + metric handles, structured
/// logger, optional access logger, tracer, workload analytics, and the
/// start instant behind `uptime_seconds`. See the [module docs](self).
#[derive(Debug)]
pub struct Telemetry {
    /// Whether measurable-cost telemetry (histograms, traces, access log)
    /// records; counters run regardless.
    pub enabled: bool,
    /// The metric registry `GET /metrics` renders.
    pub registry: Registry,
    /// The structured logger (events, traces).
    pub logger: Arc<Logger>,
    /// Access logger, when `--access-log` is set.
    pub access: Option<Logger>,
    /// Request-id + sampling source.
    pub tracer: Tracer,
    /// All pre-registered metric handles.
    pub metrics: ServeMetrics,
    /// Workload analytics (`None` when telemetry is off or `--window-secs`
    /// is `0`).
    pub analytics: Option<Analytics>,
    started: Instant,
}

impl Telemetry {
    /// Build the bundle from `config` (opens log files eagerly so a bad
    /// path fails startup, not the first request).
    pub fn new(config: &ObsConfig) -> io::Result<Self> {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let logger = Arc::new(match &config.log_file {
            Some(path) => Logger::rotating_file(
                config.log_level,
                path,
                config.log_rotate_bytes,
                config.log_rotate_keep,
            )?,
            None => Logger::stderr(config.log_level),
        });
        let access = if config.telemetry {
            config
                .access_log
                .as_ref()
                .map(|path| {
                    Logger::rotating_file(
                        Level::Info,
                        path,
                        config.log_rotate_bytes,
                        config.log_rotate_keep,
                    )
                })
                .transpose()?
        } else {
            None
        };
        let analytics = if config.telemetry && config.window_secs > 0 {
            Some(Analytics {
                windows: WorkloadWindows::new(config.window_secs),
                sources: WindowedTopK::new(config.topk),
                shards: WindowedTopK::new(config.topk),
                entities: WindowedTopK::new(config.topk),
                exemplars: ExemplarRing::new(config.exemplars),
            })
        } else {
            None
        };
        Ok(Self {
            enabled: config.telemetry,
            registry,
            logger,
            access,
            tracer: Tracer::new(config.trace_sample_rate, config.slow_request_ms),
            metrics,
            analytics,
            started: Instant::now(),
        })
    }

    /// Seconds since the server started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Count one ingest-source token in this window's heavy-hitter sketch.
    pub fn note_source(&self, key: &str) {
        if let Some(analytics) = &self.analytics {
            analytics
                .sources
                .hit_at(analytics.windows.window_epoch(), key);
        }
    }

    /// Count one routed shard in this window's heavy-hitter sketch.
    pub fn note_shard(&self, shard: usize) {
        if let Some(analytics) = &self.analytics {
            if analytics.shards.enabled() {
                analytics
                    .shards
                    .hit_at(analytics.windows.window_epoch(), &format!("shard-{shard}"));
            }
        }
    }

    /// Count one match-result entity in this window's heavy-hitter sketch.
    pub fn note_match_entity(&self, key: &str) {
        if let Some(analytics) = &self.analytics {
            analytics
                .entities
                .hit_at(analytics.windows.window_epoch(), key);
        }
    }

    /// Record one WAL fsync latency into the rolling fsync window.
    pub fn record_fsync_window(&self, ns: u64) {
        if let Some(analytics) = &self.analytics {
            analytics.windows.record_fsync(ns);
        }
    }

    /// Record one executed match micro-batch: its occupancy and why it
    /// flushed (`full` = it filled to `--batch-max` before the window
    /// expired). The flush-reason counters are always on; the occupancy
    /// histogram and rolling window follow the telemetry switch.
    pub fn record_match_batch(&self, size: u64, full: bool) {
        if full {
            self.metrics.batch_flush_full.inc();
        } else {
            self.metrics.batch_flush_window.inc();
        }
        if !self.enabled {
            return;
        }
        self.metrics.batch_size_match.record(size);
        if let Some(analytics) = &self.analytics {
            analytics.windows.record_batch(size);
        }
    }

    /// Record one group-committed ingest batch's occupancy (records that
    /// shared a single WAL append + fsync decision).
    pub fn record_ingest_batch(&self, size: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.batch_size_ingest.record(size);
        if let Some(analytics) = &self.analytics {
            analytics.windows.record_batch(size);
        }
    }

    /// Refresh the windowed gauge families (`multiem_request_rate`,
    /// `multiem_request_window_p{50,99}_seconds`,
    /// `multiem_fsync_window_p99_seconds`) from the rolling windows. Called
    /// at scrape time; a no-op when analytics is off (the gauges then stay
    /// at their zero default).
    pub fn refresh_window_metrics(&self) {
        let Some(analytics) = &self.analytics else {
            return;
        };
        for endpoint in Endpoint::ALL {
            let snap = analytics.windows.endpoint_window(endpoint);
            self.metrics.set_window_gauges(
                endpoint,
                analytics.windows.rate(snap.count()),
                snap.quantile_ms(0.5) / 1_000.0,
                snap.quantile_ms(0.99) / 1_000.0,
            );
        }
        let fsync = analytics.windows.fsync_window();
        self.metrics
            .fsync_window_p99
            .set(fsync.quantile_ms(0.99) / 1_000.0);
    }

    /// The reactor's counter pair.
    pub fn net_metrics(&self) -> NetMetrics {
        NetMetrics {
            accepted: Arc::clone(&self.metrics.connections_accepted),
            closed: Arc::clone(&self.metrics.connections_closed),
        }
    }

    /// Record one finished request: count it (always), then — telemetry
    /// permitting — close the trace against `total_ns` (its spans then sum
    /// to exactly the latency the access log reports), feed the end-to-end
    /// and per-stage histograms, emit the trace if sampled or slow, and
    /// write the access-log line.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_request(
        &self,
        method: &str,
        path: &str,
        endpoint: Endpoint,
        status: u16,
        bytes: u64,
        total_ns: u64,
        trace: &mut Trace,
    ) {
        self.metrics.count_request(endpoint, status);
        if !self.enabled {
            return;
        }
        trace.finish(total_ns);
        self.metrics.duration(endpoint).record(total_ns);
        for (stage, ns) in trace.spans() {
            self.metrics.stage(stage).record(ns);
        }
        if let Some(analytics) = &self.analytics {
            analytics.windows.record_request(endpoint, total_ns);
            let epoch = analytics.windows.window_epoch();
            if analytics.exemplars.admits(epoch, total_ns) {
                analytics.exemplars.offer(
                    epoch,
                    Exemplar {
                        trace: trace.clone(),
                        method: method.to_string(),
                        path: path.to_string(),
                        status,
                        total_ns,
                        ts_ms: exemplar::unix_ms(),
                    },
                );
            }
        }
        if self.tracer.should_emit(trace, total_ns) {
            let slow = self.tracer.slow_ns() > 0 && total_ns >= self.tracer.slow_ns();
            trace::emit(&self.logger, trace, method, path, status, total_ns, slow);
        }
        if let Some(access) = &self.access {
            access.info(
                "access",
                &[
                    ("request_id", Value::UInt(trace.id)),
                    ("method", Value::Str(method.to_string())),
                    ("path", Value::Str(path.to_string())),
                    ("status", Value::UInt(u64::from(status))),
                    ("bytes", Value::UInt(bytes)),
                    ("latency_ns", Value::UInt(total_ns)),
                    ("fan_out", Value::UInt(trace.fan_out_width())),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_classify_the_route_table() {
        assert_eq!(Endpoint::of("GET", "/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::of("GET", "/readyz"), Endpoint::Readyz);
        assert_eq!(Endpoint::of("GET", "/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::of("GET", "/debug/top"), Endpoint::Debug);
        assert_eq!(Endpoint::of("GET", "/debug/window"), Endpoint::Debug);
        assert_eq!(Endpoint::of("POST", "/debug/top"), Endpoint::Other);
        assert_eq!(Endpoint::of("POST", "/records"), Endpoint::Records);
        assert_eq!(
            Endpoint::of("POST", "/records/delete"),
            Endpoint::RecordsDelete
        );
        assert_eq!(
            Endpoint::of("DELETE", "/records/0-1-2"),
            Endpoint::RecordsDelete
        );
        assert_eq!(Endpoint::of("POST", "/match"), Endpoint::Match);
        assert_eq!(Endpoint::of("POST", "/snapshot"), Endpoint::Snapshot);
        assert_eq!(Endpoint::of("POST", "/admin/shutdown"), Endpoint::Shutdown);
        assert_eq!(Endpoint::of("GET", "/nope"), Endpoint::Other);
        assert_eq!(Endpoint::of("PUT", "/records"), Endpoint::Other);
    }

    #[test]
    fn status_classes_split_out_429() {
        assert_eq!(STATUS_CLASSES[status_class(200)], "2xx");
        assert_eq!(STATUS_CLASSES[status_class(404)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class(429)], "429");
        assert_eq!(STATUS_CLASSES[status_class(500)], "5xx");
    }

    #[test]
    fn finish_request_feeds_counters_histograms_and_respects_the_kill_switch() {
        let on = Telemetry::new(&ObsConfig {
            trace_sample_rate: 1.0,
            ..ObsConfig::default()
        })
        .unwrap();
        let mut trace = on.tracer.start();
        trace.add(Stage::Parse, 1_000);
        trace.add(Stage::AnnSearch, 5_000);
        on.finish_request(
            "POST",
            "/match",
            Endpoint::Match,
            200,
            64,
            10_000,
            &mut trace,
        );
        assert_eq!(on.metrics.requests_for(Endpoint::Match), 1);
        assert_eq!(on.metrics.duration(Endpoint::Match).count(), 1);
        assert_eq!(on.metrics.stage(Stage::AnnSearch).count(), 1);
        // Respond picked up the residual: spans sum to the total latency.
        assert_eq!(trace.get(Stage::Respond), 4_000);
        assert_eq!(trace.total_ns(), 10_000);
        // The analytics layer saw the request: rolling window + exemplar.
        let analytics = on.analytics.as_ref().expect("analytics on by default");
        let epoch = analytics.windows.window_epoch();
        assert_eq!(
            analytics.windows.endpoint_window(Endpoint::Match).count(),
            1
        );
        assert_eq!(analytics.exemplars.snapshot_at(epoch).len(), 1);
        on.note_source("acme");
        on.note_shard(3);
        on.note_match_entity("0-1-2");
        assert_eq!(analytics.sources.top_at(epoch).0[0].key, "acme");
        assert_eq!(analytics.shards.top_at(epoch).0[0].key, "shard-3");
        assert_eq!(analytics.entities.top_at(epoch).0[0].key, "0-1-2");
        on.refresh_window_metrics();
        let text = on.registry.render();
        assert!(text.contains("multiem_request_rate{endpoint=\"match\"}"));
        assert!(text.contains("multiem_request_window_p99_seconds{endpoint=\"match\"}"));

        let off = Telemetry::new(&ObsConfig {
            telemetry: false,
            ..ObsConfig::default()
        })
        .unwrap();
        let mut trace = off.tracer.start();
        trace.add(Stage::Parse, 1_000);
        off.finish_request(
            "POST",
            "/match",
            Endpoint::Match,
            429,
            64,
            10_000,
            &mut trace,
        );
        // Counters stay on; the histogram does not record, the analytics
        // layer is absent entirely.
        assert_eq!(off.metrics.requests_for(Endpoint::Match), 1);
        assert_eq!(off.metrics.duration(Endpoint::Match).count(), 0);
        assert!(off.analytics.is_none());
        off.note_source("acme"); // must be a safe no-op
        off.refresh_window_metrics();
        // The scrape still renders a complete exposition.
        let text = off.registry.render();
        assert!(text.contains("multiem_requests_total{endpoint=\"match\",status=\"429\"} 1"));
        assert!(text.contains(&format!(
            "multiem_build_info{{version=\"{BUILD_VERSION}\"}} 1"
        )));
    }

    #[test]
    fn batch_metrics_record_and_render() {
        let on = Telemetry::new(&ObsConfig::default()).unwrap();
        on.record_match_batch(4, true);
        on.record_match_batch(1, false);
        on.record_ingest_batch(16);
        assert_eq!(on.metrics.batch_flush_full.get(), 1);
        assert_eq!(on.metrics.batch_flush_window.get(), 1);
        assert_eq!(on.metrics.batch_size_match.count(), 2);
        assert_eq!(on.metrics.batch_size_ingest.count(), 1);
        let analytics = on.analytics.as_ref().expect("analytics on by default");
        assert_eq!(analytics.windows.batch_window().count(), 3);
        let text = on.registry.render();
        assert!(text.contains("multiem_batch_flush_total{reason=\"full\"} 1"));
        assert!(text.contains("multiem_batch_flush_total{reason=\"window\"} 1"));
        assert!(text.contains("multiem_batch_size_count{kind=\"match\"} 2"));
        // Raw-value rendering: the ingest batch sum is 16 records, not
        // 16 ns scaled to seconds.
        assert!(text.contains("multiem_batch_size_sum{kind=\"ingest\"} 16"));

        // Kill switch: flush-reason counters stay on, occupancy stops.
        let off = Telemetry::new(&ObsConfig {
            telemetry: false,
            ..ObsConfig::default()
        })
        .unwrap();
        off.record_match_batch(4, true);
        off.record_ingest_batch(2);
        assert_eq!(off.metrics.batch_flush_full.get(), 1);
        assert_eq!(off.metrics.batch_size_match.count(), 0);
        assert_eq!(off.metrics.batch_size_ingest.count(), 0);
    }

    #[test]
    fn uptime_moves_forward() {
        let telemetry = Telemetry::new(&ObsConfig::default()).unwrap();
        assert!(telemetry.uptime_seconds() >= 0.0);
        telemetry
            .metrics
            .uptime_seconds
            .set(telemetry.uptime_seconds());
        assert!(telemetry.metrics.uptime_seconds.get() >= 0.0);
    }
}
