//! Lock-free, mergeable log-linear latency histograms.
//!
//! A [`Histogram`] is a fixed array of atomic bucket counters over a
//! log-linear value grid: every power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so the relative bucket width is at
//! most `1/16` (6.25%) everywhere while the whole `u64` range fits in under
//! a thousand buckets. Recording is two relaxed atomic adds (bucket +
//! running sum) — cheap enough to stay on for every request — and any
//! number of writer threads share one histogram without locks.
//!
//! Histograms are **mergeable**: per-I/O-loop or per-shard instances can be
//! [`Histogram::absorb`]ed into an aggregate, and a [`HistogramSnapshot`]
//! taken with [`Histogram::snapshot`] observes a consistent-enough view
//! without ever stopping writers (counts race only by in-flight samples).
//! Quantiles come out of the snapshot with the same nearest-rank rule as
//! [`crate::metrics::percentile_ms`], so a recorded quantile is always
//! within one bucket width of the exact sample statistic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two sub-bucket split per octave (`1 << SUB_BITS` sub-buckets).
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave; also the bound of the first linear range.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range: the first
/// `SUB_BUCKETS` values one-to-one, then 16 sub-buckets for each of the 60
/// remaining octaves.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of `value` on the log-linear grid.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (value >> shift) - SUB_BUCKETS;
    ((shift as usize + 1) * SUB_BUCKETS as usize) + sub as usize
}

/// Largest value that lands in bucket `index` (the bucket's inclusive upper
/// bound — what quantile queries report).
pub fn bucket_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let shift = (index / SUB_BUCKETS as usize - 1) as u32;
    let sub = (index % SUB_BUCKETS as usize) as u64;
    // The topmost bucket's exclusive upper edge is 2^64 itself, which
    // shifts to 0 — its inclusive bound is u64::MAX.
    match (SUB_BUCKETS + sub + 1).checked_shl(shift) {
        Some(0) | None => u64::MAX,
        Some(edge) => edge - 1,
    }
}

/// Width of bucket `index` in value units (how far a reported quantile can
/// sit from the exact sample it stands for).
pub fn bucket_width(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return 1;
    }
    1u64 << (index / SUB_BUCKETS as usize - 1).min(63)
}

/// A fixed-size log-linear histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, ...). See the [module docs](self).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([const { AtomicU64::new(0) }; NUM_BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free: two relaxed adds.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: independent stats counter; readers tolerate skew
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // relaxed-ok: independent stats counter; readers tolerate skew
    }

    /// Merge every sample of `other` into `self` (bucket-wise atomic adds;
    /// `other` keeps its contents). Merging N per-thread histograms into an
    /// aggregate is exactly equivalent to having recorded every sample into
    /// the aggregate directly.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
    }

    /// Reset every bucket to zero (relaxed stores). Not a linearization
    /// point: a sample recorded concurrently lands in either the old or the
    /// new generation — acceptable for the rolling-window telemetry this
    /// backs, where a window boundary is already coarse.
    pub fn clear(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
        }
        self.count.store(0, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
        self.sum.store(0, Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
    }

    /// A point-in-time copy of the bucket counts, taken without stopping
    /// writers (a sample recorded concurrently may or may not be included).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed); // relaxed-ok: independent stats counter; readers tolerate skew
            if n > 0 {
                buckets.push((index, n));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed), // relaxed-ok: independent stats counter; readers tolerate skew
            sum: self.sum.load(Ordering::Relaxed), // relaxed-ok: independent stats counter; readers tolerate skew
        }
    }
}

/// An immutable copy of a [`Histogram`]'s non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs, ascending by index.
    buckets: Vec<(usize, u64)>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    /// An empty snapshot (no samples; quantiles answer `None`). The identity
    /// of [`HistogramSnapshot::merge`].
    fn default() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// ascending (the shape Prometheus exposition and quantile queries
    /// consume).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(index, n)| (bucket_bound(index), n))
    }

    /// Fold another snapshot's buckets into this one (merge of per-shard
    /// snapshots; equivalent to a snapshot of the absorbed histogram).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for &(index, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(at) => self.buckets[at].1 += n,
                Err(at) => self.buckets.insert(at, (index, n)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (0.0..=1.0) as the upper bound of the bucket holding
    /// the nearest-rank sample — the same rank rule as
    /// [`crate::metrics::percentile_ms`], so the answer is within one bucket
    /// width of the exact sample. `None` on an empty snapshot.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return Some(bucket_bound(index));
            }
        }
        self.buckets.last().map(|&(index, _)| bucket_bound(index))
    }

    /// [`HistogramSnapshot::quantile`] of nanosecond samples, in
    /// milliseconds (`0.0` when empty — matches
    /// [`crate::metrics::percentile_ms`] on no samples).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q).map(|ns| ns as f64 / 1.0e6).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::percentile_ms;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bucket_grid_is_contiguous_and_monotone() {
        // Every value maps to exactly one bucket whose bounds contain it,
        // and bucket indexes never decrease as values grow.
        let mut last_index = 0usize;
        for value in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let index = bucket_index(value);
            assert!(index >= last_index, "index regressed at {value}");
            assert!(value <= bucket_bound(index), "value above bound: {value}");
            if index > 0 {
                assert!(
                    value > bucket_bound(index - 1),
                    "value {value} below its bucket"
                );
            }
            last_index = index;
        }
        const { assert!(NUM_BUCKETS < 1024, "histogram footprint blew up") };
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Log-linear grid: width / lower bound <= 1/16 beyond the linear
        // range, which is what makes quantiles accurate to ~6%.
        for value in [100u64, 1_000, 50_000, 1_000_000, 123_456_789] {
            let index = bucket_index(value);
            let width = bucket_width(index);
            let lo = bucket_bound(index) - width + 1;
            assert!(
                width as f64 / lo as f64 <= 1.0 / 16.0 + 1e-9,
                "bucket at {value} too wide: width {width}, lo {lo}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_one_bucket() {
        // Property: for seeded samples spanning five orders of magnitude,
        // every queried quantile equals the exact nearest-rank statistic to
        // within the width of the bucket that answered (the guarantee the
        // /metrics p50/p99 rest on).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let hist = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..5000 {
            let magnitude = 10u64.pow(rng.gen_range(2u32..7));
            let sample = rng.gen_range(1..magnitude * 10);
            hist.record(sample);
            samples.push(sample);
        }
        samples.sort_unstable();
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.count(), samples.len() as u64);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact_ms = percentile_ms(&samples, q);
            let approx = snapshot.quantile(q).unwrap();
            let approx_ms = approx as f64 / 1.0e6;
            let width_ms = bucket_width(bucket_index(approx)) as f64 / 1.0e6;
            assert!(
                approx_ms >= exact_ms && approx_ms - exact_ms <= width_ms,
                "q={q}: histogram {approx_ms}ms vs exact {exact_ms}ms \
                 (bucket width {width_ms}ms)"
            );
        }
    }

    #[test]
    fn merge_of_shards_equals_record_into_one() {
        // Recording a stream into N shard-local histograms and merging is
        // indistinguishable from recording everything into one — both via
        // live absorb() and via snapshot merge().
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let combined = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..2000u64 {
            let sample = rng.gen_range(1..10_000_000u64);
            combined.record(sample);
            shards[(i % 4) as usize].record(sample);
        }
        let absorbed = Histogram::new();
        for shard in &shards {
            absorbed.absorb(shard);
        }
        assert_eq!(absorbed.snapshot(), combined.snapshot());

        let mut merged = shards[0].snapshot();
        for shard in &shards[1..] {
            merged.merge(&shard.snapshot());
        }
        assert_eq!(merged, combined.snapshot());
        assert_eq!(merged.sum(), combined.sum());
    }

    #[test]
    fn empty_and_extreme_values_are_safe() {
        let hist = Histogram::new();
        assert_eq!(hist.snapshot().quantile(0.5), None);
        assert_eq!(hist.snapshot().quantile_ms(0.99), 0.0);
        hist.record(0);
        hist.record(u64::MAX);
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.count(), 2);
        assert_eq!(snapshot.quantile(0.0), Some(0));
        assert_eq!(snapshot.quantile(1.0), Some(u64::MAX));
        // Clearing recycles the histogram back to its empty state.
        hist.clear();
        assert_eq!(hist.snapshot(), HistogramSnapshot::default());
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.sum(), 0);
    }
}
