//! Per-request tracing: a span stack over the serving pipeline's stages.
//!
//! Every request gets a [`Trace`] — a monotonically assigned id plus one
//! duration slot per pipeline [`Stage`] — filled in as the request moves
//! parse → queue-wait → shard fan-out → ANN search → rank-merge → WAL
//! append → fsync. At completion [`Trace::finish`] assigns whatever wall
//! time the marked stages don't account for to [`Stage::Respond`], so the
//! spans of an emitted trace **always sum exactly to the request's
//! end-to-end latency** (the same number the access log reports).
//!
//! The [`Tracer`] decides which traces leave the process: an every-Nth
//! deterministic sampler driven by `--trace-sample-rate` (an atomic tick —
//! no RNG on the hot path) plus a `--slow-request-ms` threshold that
//! force-emits outliers regardless of sampling. Emitted traces are JSON
//! lines on the structured logger (`"event":"trace"`), one object per
//! request, spans keyed by stage name in nanoseconds.

use super::log::Logger;
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pipeline stages a request can spend time in, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// HTTP head/body parsing in the I/O loop plus JSON body decoding.
    Parse,
    /// Dispatch onto the worker pool until a worker picks the request up.
    QueueWait,
    /// Fan-out coordination around the parallel shard section (scatter +
    /// gather overhead beyond the slowest shard's own search time).
    FanOut,
    /// ANN search inside the shards (critical path: the slowest shard).
    AnnSearch,
    /// Merging per-shard ranked candidates into the final top-k.
    RankMerge,
    /// Appending frames to the write-ahead log (buffered write + flush).
    WalAppend,
    /// Waiting on `fdatasync` for durability (policy-dependent).
    Fsync,
    /// Applying writes/deletes to the in-memory shards.
    Apply,
    /// Residual: response rendering, routing and anything unmarked —
    /// computed by [`Trace::finish`] so spans sum to the total.
    Respond,
}

impl Stage {
    /// Number of stages (size of a trace's span array).
    pub const COUNT: usize = 9;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::FanOut,
        Stage::AnnSearch,
        Stage::RankMerge,
        Stage::WalAppend,
        Stage::Fsync,
        Stage::Apply,
        Stage::Respond,
    ];

    /// The stage's snake_case name (trace JSON key, `stage` metric label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::FanOut => "fan_out",
            Stage::AnnSearch => "ann_search",
            Stage::RankMerge => "rank_merge",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::Apply => "apply",
            Stage::Respond => "respond",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One request's span stack: an id plus a duration per [`Stage`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// Monotonically assigned request id (also the access-log `request_id`).
    pub id: u64,
    /// Whether the sampler picked this request at admission.
    pub sampled: bool,
    spans: [u64; Stage::COUNT],
    fan_out_width: u64,
}

impl Trace {
    /// An empty trace (normally obtained from [`Tracer::start`]).
    pub fn new(id: u64, sampled: bool) -> Self {
        Self {
            id,
            sampled,
            spans: [0; Stage::COUNT],
            fan_out_width: 0,
        }
    }

    /// Add `ns` to `stage` (accumulates across calls — e.g. two WAL batches
    /// in one request fold into one `wal_append` span).
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.spans[stage.index()] = self.spans[stage.index()].saturating_add(ns);
    }

    /// Duration recorded for `stage` so far.
    pub fn get(&self, stage: Stage) -> u64 {
        self.spans[stage.index()]
    }

    /// Record how many shards the request fanned out to.
    pub fn set_fan_out_width(&mut self, shards: u64) {
        self.fan_out_width = shards;
    }

    /// Shards this request fanned out to (0 for non-search requests).
    pub fn fan_out_width(&self) -> u64 {
        self.fan_out_width
    }

    /// Close the trace against the request's end-to-end duration:
    /// [`Stage::Respond`] becomes `total_ns` minus everything marked, so the
    /// span sum equals `total_ns` exactly (clamped — if markers overlap and
    /// overshoot, the residual is 0 and the sum can only undershoot by that
    /// measurement overlap, never drift unbounded).
    pub fn finish(&mut self, total_ns: u64) {
        let marked: u64 = Stage::ALL
            .iter()
            .filter(|s| !matches!(s, Stage::Respond))
            .map(|s| self.spans[s.index()])
            .sum();
        self.spans[Stage::Respond.index()] = total_ns.saturating_sub(marked);
    }

    /// `(stage, ns)` pairs for every stage with a nonzero duration, in
    /// pipeline order.
    pub fn spans(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL
            .into_iter()
            .filter(|s| self.spans[s.index()] > 0)
            .map(|s| (s, self.spans[s.index()]))
    }

    /// Sum of all recorded spans (equals the `total_ns` given to
    /// [`Trace::finish`] once finished).
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().sum()
    }
}

/// Hands out request ids and decides which traces get emitted.
#[derive(Debug)]
pub struct Tracer {
    /// Emit every Nth request (0 = sampling off).
    sample_every: u64,
    /// Force-emit any request at least this slow (0 = threshold off).
    slow_ns: u64,
    seq: AtomicU64,
    tick: AtomicU64,
}

impl Tracer {
    /// A tracer sampling at `sample_rate` (0.0..=1.0, mapped to a
    /// deterministic every-Nth stride) and force-emitting requests slower
    /// than `slow_request_ms` (0 disables the threshold).
    pub fn new(sample_rate: f64, slow_request_ms: u64) -> Self {
        let sample_every = if sample_rate <= 0.0 {
            0
        } else if sample_rate >= 1.0 {
            1
        } else {
            (1.0 / sample_rate).round().max(1.0) as u64
        };
        Self {
            sample_every,
            slow_ns: slow_request_ms.saturating_mul(1_000_000),
            seq: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// Admit one request: assign the next id and roll the sampler.
    pub fn start(&self) -> Trace {
        let id = self.seq.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: id/tick dispenser; only RMW uniqueness matters
        let sampled = match self.sample_every {
            0 => false,
            n => self.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(n), // relaxed-ok: id/tick dispenser; only RMW uniqueness matters
        };
        Trace::new(id, sampled)
    }

    /// Whether a finished trace should be written out: sampled at admission,
    /// or slower than the `--slow-request-ms` threshold.
    pub fn should_emit(&self, trace: &Trace, total_ns: u64) -> bool {
        trace.sampled || (self.slow_ns > 0 && total_ns >= self.slow_ns)
    }

    /// The configured slow threshold in nanoseconds (0 = off).
    pub fn slow_ns(&self) -> u64 {
        self.slow_ns
    }
}

/// Write a finished trace as one JSON line (`"event":"trace"`) on `logger`.
/// Schema: `request_id`, `method`, `path`, `status`, `total_ns`, `slow`,
/// `fan_out` (when search fanned out), then one `<stage>_ns` field per
/// nonzero stage in pipeline order.
pub fn emit(
    logger: &Logger,
    trace: &Trace,
    method: &str,
    path: &str,
    status: u16,
    total_ns: u64,
    slow: bool,
) {
    let mut fields: Vec<(&str, Value)> = vec![
        ("request_id", Value::UInt(trace.id)),
        ("method", Value::Str(method.to_string())),
        ("path", Value::Str(path.to_string())),
        ("status", Value::UInt(u64::from(status))),
        ("total_ns", Value::UInt(total_ns)),
        ("slow", Value::Bool(slow)),
    ];
    if trace.fan_out_width() > 0 {
        fields.push(("fan_out", Value::UInt(trace.fan_out_width())));
    }
    let mut spans: Vec<(String, Value)> = Vec::new();
    for (stage, ns) in trace.spans() {
        spans.push((format!("{}_ns", stage.name()), Value::UInt(ns)));
    }
    fields.push(("spans", Value::Map(spans)));
    logger.info("trace", &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_is_the_residual_and_spans_sum_to_total() {
        let mut trace = Trace::new(1, true);
        trace.add(Stage::Parse, 1_000);
        trace.add(Stage::QueueWait, 2_000);
        trace.add(Stage::AnnSearch, 40_000);
        trace.add(Stage::RankMerge, 3_000);
        trace.add(Stage::FanOut, 4_000);
        trace.finish(60_000);
        assert_eq!(trace.get(Stage::Respond), 10_000);
        assert_eq!(trace.total_ns(), 60_000);
        let names: Vec<&str> = trace.spans().map(|(s, _)| s.name()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue_wait",
                "fan_out",
                "ann_search",
                "rank_merge",
                "respond"
            ]
        );

        // Overshoot (overlapping markers) clamps the residual to zero rather
        // than wrapping.
        let mut trace = Trace::new(2, false);
        trace.add(Stage::WalAppend, 90_000);
        trace.finish(50_000);
        assert_eq!(trace.get(Stage::Respond), 0);
    }

    #[test]
    fn sampler_is_deterministic_every_nth() {
        let tracer = Tracer::new(0.25, 0);
        let sampled: Vec<bool> = (0..8).map(|_| tracer.start().sampled).collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false]
        );
        // Ids are unique and monotone regardless of sampling.
        let next = tracer.start();
        assert_eq!(next.id, 9);

        let off = Tracer::new(0.0, 0);
        assert!((0..100).all(|_| !off.start().sampled));
        let all = Tracer::new(1.0, 0);
        assert!((0..100).all(|_| all.start().sampled));
    }

    #[test]
    fn slow_requests_are_emitted_even_when_unsampled() {
        let tracer = Tracer::new(0.0, 5); // 5 ms threshold, sampling off
        let trace = tracer.start();
        assert!(!trace.sampled);
        assert!(!tracer.should_emit(&trace, 4_999_999));
        assert!(tracer.should_emit(&trace, 5_000_000));
        let no_threshold = Tracer::new(0.0, 0);
        assert!(!no_threshold.should_emit(&trace, u64::MAX));
    }
}
