//! The `multiem-serve` CLI: run the sharded matching service.
//!
//! ```bash
//! cargo run --release -p multiem-serve --bin serve -- \
//!     --addr 127.0.0.1:7878 --shards 4 --workers 8 \
//!     --data-dir ./multiem-data --attrs title
//! ```

#![forbid(unsafe_code)]

use multiem_embed::HashedLexicalEncoder;
use multiem_online::SnapshotFormat;
use multiem_serve::obs::Level;
use multiem_serve::{FsyncPolicy, MatchServer, ServeConfig, StorageBackend};
use std::path::PathBuf;

fn main() {
    let mut config = ServeConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => config.shards = parse(&value("--shards"), "--shards"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--io-threads" => config.io_threads = parse(&value("--io-threads"), "--io-threads"),
            "--data-dir" => config.data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--attrs" => {
                config.attributes = value("--attrs")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--m" => config.online.base.m = parse(&value("--m"), "--m"),
            "--json-snapshots" => config.snapshot_format = SnapshotFormat::Json,
            "--storage" => {
                config.storage =
                    StorageBackend::parse(&value("--storage")).unwrap_or_else(|e| fail(&e));
            }
            "--fsync" => {
                config.fsync = FsyncPolicy::parse(&value("--fsync")).unwrap_or_else(|e| fail(&e));
            }
            "--queue-depth" => {
                config.queue_depth = parse(&value("--queue-depth"), "--queue-depth");
            }
            "--batch-window-us" => {
                config.batch_window_us = parse(&value("--batch-window-us"), "--batch-window-us");
            }
            "--batch-max" => {
                config.batch_max = parse(&value("--batch-max"), "--batch-max");
            }
            "--log-level" => {
                config.obs.log_level =
                    Level::parse(&value("--log-level")).unwrap_or_else(|e| fail(&e));
            }
            "--log-file" => config.obs.log_file = Some(PathBuf::from(value("--log-file"))),
            "--access-log" => config.obs.access_log = Some(PathBuf::from(value("--access-log"))),
            "--trace-sample-rate" => {
                config.obs.trace_sample_rate =
                    parse(&value("--trace-sample-rate"), "--trace-sample-rate");
            }
            "--slow-request-ms" => {
                config.obs.slow_request_ms =
                    parse(&value("--slow-request-ms"), "--slow-request-ms");
            }
            "--no-telemetry" => config.obs.telemetry = false,
            "--window-secs" => {
                config.obs.window_secs = parse(&value("--window-secs"), "--window-secs");
            }
            "--topk" => config.obs.topk = parse(&value("--topk"), "--topk"),
            "--exemplars" => config.obs.exemplars = parse(&value("--exemplars"), "--exemplars"),
            "--ready-max-backlog" => {
                config.obs.ready_max_backlog =
                    parse(&value("--ready-max-backlog"), "--ready-max-backlog");
            }
            "--ready-max-fsync-ms" => {
                config.obs.ready_max_fsync_ms =
                    parse(&value("--ready-max-fsync-ms"), "--ready-max-fsync-ms");
            }
            "--log-rotate-bytes" => {
                config.obs.log_rotate_bytes =
                    parse(&value("--log-rotate-bytes"), "--log-rotate-bytes");
            }
            "--log-rotate-keep" => {
                config.obs.log_rotate_keep =
                    parse(&value("--log-rotate-keep"), "--log-rotate-keep");
            }
            "--help" | "-h" => {
                println!(
                    "multiem-serve: sharded entity-matching service\n\n\
                     options:\n\
                     \x20 --addr HOST:PORT   bind address (default 127.0.0.1:7878)\n\
                     \x20 --shards N         store shards (default 4)\n\
                     \x20 --workers N        request-execution worker threads (default 4)\n\
                     \x20 --io-threads N     I/O event loops, each multiplexing many\n\
                     \x20                    nonblocking connections (default 2)\n\
                     \x20 --data-dir PATH    enable WAL + checkpoints under PATH\n\
                     \x20 --attrs a,b,c      schema attribute names (default `title`)\n\
                     \x20 --m FLOAT          merge distance threshold (default 0.35)\n\
                     \x20 --json-snapshots   checkpoint as JSON instead of binary\n\
                     \x20 --storage mem|disk record storage backend (disk spills to\n\
                     \x20                    segment files under --data-dir; default mem)\n\
                     \x20 --fsync POLICY     WAL fsync: never, interval or always\n\
                     \x20                    (default interval)\n\
                     \x20 --queue-depth N    per-shard ingest queue bound; full shards\n\
                     \x20                    answer 429 + Retry-After (default 4096)\n\
                     \x20 --batch-window-us N  coalesce concurrent /match requests for\n\
                     \x20                    up to N microseconds into one shard\n\
                     \x20                    fan-out (default 0 = no coalescing)\n\
                     \x20 --batch-max N      flush a match micro-batch immediately\n\
                     \x20                    once it holds N requests (default 64)\n\
                     \x20 --log-level LVL    structured-log level: error, warn, info\n\
                     \x20                    or debug (default info)\n\
                     \x20 --log-file PATH    write structured JSON logs to PATH\n\
                     \x20                    instead of stderr\n\
                     \x20 --access-log PATH  append one JSON access line per request\n\
                     \x20 --trace-sample-rate R  emit the trace of every ~1/R-th\n\
                     \x20                    request as a JSON line (0 disables)\n\
                     \x20 --slow-request-ms N  force-emit traces of requests slower\n\
                     \x20                    than N ms, sampled or not (0 disables)\n\
                     \x20 --no-telemetry     disable histograms, traces and the\n\
                     \x20                    access log (counters stay on)\n\
                     \x20 --window-secs N    rolling analytics window for /debug/*\n\
                     \x20                    and the windowed /metrics series\n\
                     \x20                    (default 60; 0 disables analytics)\n\
                     \x20 --topk K           heavy hitters tracked per window\n\
                     \x20                    (default 16; 0 disables /debug/top)\n\
                     \x20 --exemplars N      slowest-request traces kept per window\n\
                     \x20                    (default 8; 0 disables /debug/slow)\n\
                     \x20 --ready-max-backlog N   /readyz answers 503 past N queued\n\
                     \x20                    ingest records (0 disables)\n\
                     \x20 --ready-max-fsync-ms N  /readyz answers 503 past N ms\n\
                     \x20                    windowed p99 fsync latency (0 disables)\n\
                     \x20 --log-rotate-bytes N  rotate --log-file / --access-log\n\
                     \x20                    at N bytes (0 disables rotation)\n\
                     \x20 --log-rotate-keep N  rotated generations kept (default 3)"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let server = match MatchServer::bind(config.clone(), HashedLexicalEncoder::default(), &addr) {
        Ok(server) => server,
        Err(e) => fail(&format!("startup failed: {e}")),
    };
    let bound = server.local_addr().expect("listener has an address");
    println!("multiem-serve listening on http://{bound}");
    println!(
        "  {} shard(s), {} worker(s), {} I/O event loop(s), durability: {}",
        config.shards,
        config.workers,
        config.io_threads,
        config
            .data_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "in-memory".into())
    );
    println!(
        "  POST /records  POST /match  POST /snapshot  POST /admin/shutdown  \
         GET /stats  GET /healthz  GET /readyz  GET /metrics  GET /debug/*"
    );
    if let Err(e) = server.run() {
        fail(&format!("server error: {e}"));
    }
    // run() returns only after a graceful shutdown: accepting stopped,
    // in-flight requests drained, WALs flushed.
    println!("multiem-serve: drained and flushed; exiting");
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{text}` for {flag}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
