//! Seeded mixed read/write load generator for `multiem-serve`.
//!
//! Hammers a server with concurrent keep-alive clients issuing a seeded mix
//! of `POST /records` (writes), `POST /match` (reads) and — with
//! `--delete-ratio` — `DELETE /records/{id}` calls against its own earlier
//! inserts, then reports throughput and p50/p99 latency. A `429` answer is
//! not an error: the client honours the server's `Retry-After` (capped at 2s
//! per wait) and retries a bounded number of times. Without `--addr` it
//! spins up an embedded in-memory server so the run is fully self-contained
//! (what CI does). Fresh titles skew ~30% of the traffic onto one brand, so
//! embedded `--scrape-metrics` runs can also assert the server's windowed
//! heavy-hitter sketch (`GET /debug/top`) names the true hottest source.
//!
//! `--connections` opens more keep-alive sockets than there are in-flight
//! requests (`--clients` drives concurrency; each client thread rotates its
//! requests round-robin over its share of the connection pool, leaving the
//! rest idle). That shape exercises the event-driven multiplexer the way
//! production traffic does — many mostly-idle connections over few workers
//! — and would have deadlocked the old thread-per-connection front end as
//! soon as connections exceeded `--workers`.
//!
//! ```bash
//! cargo run --release -p multiem-serve --bin loadgen -- --smoke --out BENCH_serve.json
//! ```
//!
//! Exits non-zero if any request fails, so it doubles as a smoke gate.

#![forbid(unsafe_code)]

use multiem_embed::HashedLexicalEncoder;
use multiem_serve::http::HttpClient;
use multiem_serve::metrics::percentile_ms;
use multiem_serve::{MatchServer, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

const BRANDS: &[&str] = &[
    "apple", "sony", "makita", "dyson", "bosch", "lenovo", "canon", "garmin", "philips", "asus",
];
const PRODUCTS: &[&str] = &[
    "phone 12 pro",
    "bravia tv 55",
    "drill 18v",
    "v11 vacuum",
    "washing machine",
    "thinkpad x1",
    "eos camera",
    "gps watch",
    "air fryer xl",
    "router ax6000",
];
const VARIANTS: &[&str] = &[
    "",
    " silver",
    " black",
    " 64gb",
    " refurbished",
    " 2024 edition",
];

struct Options {
    addr: Option<String>,
    clients: usize,
    /// Keep-alive connections across all clients (0 = one per client).
    connections: usize,
    requests: usize,
    write_ratio: f64,
    /// Fraction of requests deleting a record this run inserted earlier.
    delete_ratio: f64,
    /// Requests each client writes onto one socket before reading any
    /// response back (HTTP/1.1 pipelining). `1` is classic stop-and-wait.
    pipeline_depth: usize,
    seed: u64,
    shards: usize,
    workers: usize,
    io_threads: usize,
    /// Match micro-batch window of the embedded server, in microseconds
    /// (0 = coalescing off — the server default).
    batch_window_us: u64,
    /// Match micro-batch size cap of the embedded server.
    batch_max: usize,
    out: Option<String>,
    /// Fetch `GET /metrics` after the run and print the server-side view.
    scrape_metrics: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 4,
            connections: 0,
            requests: 2000,
            write_ratio: 0.6,
            delete_ratio: 0.0,
            pipeline_depth: 1,
            seed: 42,
            shards: 4,
            workers: 4,
            io_threads: 2,
            batch_window_us: 0,
            batch_max: 64,
            out: None,
            scrape_metrics: false,
        }
    }
}

#[derive(Default)]
struct ClientReport {
    write_ns: Vec<u64>,
    read_ns: Vec<u64>,
    delete_ns: Vec<u64>,
    errors: usize,
    /// Requests that got a 429 and were retried after the server's
    /// `Retry-After` (successful retries do not count as errors).
    retried_429: usize,
}

fn main() {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--clients" => opts.clients = parse(&value("--clients"), "--clients"),
            "--connections" => {
                opts.connections = parse(&value("--connections"), "--connections");
            }
            "--requests" => opts.requests = parse(&value("--requests"), "--requests"),
            "--write-ratio" => opts.write_ratio = parse(&value("--write-ratio"), "--write-ratio"),
            "--delete-ratio" => {
                opts.delete_ratio = parse(&value("--delete-ratio"), "--delete-ratio");
            }
            "--pipeline-depth" => {
                opts.pipeline_depth = parse(&value("--pipeline-depth"), "--pipeline-depth");
            }
            "--batch-window-us" => {
                opts.batch_window_us = parse(&value("--batch-window-us"), "--batch-window-us");
            }
            "--batch-max" => opts.batch_max = parse(&value("--batch-max"), "--batch-max"),
            "--seed" => opts.seed = parse(&value("--seed"), "--seed"),
            "--shards" => opts.shards = parse(&value("--shards"), "--shards"),
            "--workers" => opts.workers = parse(&value("--workers"), "--workers"),
            "--io-threads" => opts.io_threads = parse(&value("--io-threads"), "--io-threads"),
            "--out" => opts.out = Some(value("--out")),
            "--scrape-metrics" => opts.scrape_metrics = true,
            "--smoke" => {
                opts.clients = 4;
                opts.requests = 240;
                // 8x the worker count: proves idle keep-alive connections
                // no longer consume workers (the old front end deadlocked
                // here).
                opts.connections = 32;
            }
            "--help" | "-h" => {
                println!(
                    "loadgen: seeded mixed read/write workload for multiem-serve\n\n\
                     options:\n\
                     \x20 --addr HOST:PORT    target an external server (default: embedded)\n\
                     \x20 --clients N         concurrent in-flight requesters (default 4)\n\
                     \x20 --connections N     keep-alive connections spread across clients;\n\
                     \x20                     may exceed --workers (default: one per client)\n\
                     \x20 --requests N        total requests across clients (default 2000)\n\
                     \x20 --write-ratio F     fraction of writes (default 0.6)\n\
                     \x20 --delete-ratio F    fraction of requests deleting an earlier\n\
                     \x20                     insert of this run (default 0)\n\
                     \x20 --pipeline-depth N  write N requests per socket before reading\n\
                     \x20                     any response back — HTTP/1.1 pipelining\n\
                     \x20                     (default 1 = stop-and-wait)\n\
                     \x20 --batch-window-us N embedded server: coalesce concurrent /match\n\
                     \x20                     requests for up to N us (default 0 = off);\n\
                     \x20                     with --pipeline-depth and a low write ratio\n\
                     \x20                     this is the batched-match mode\n\
                     \x20 --batch-max N       embedded server: flush a match micro-batch\n\
                     \x20                     at N requests (default 64)\n\
                     \x20 --seed N            workload seed (default 42)\n\
                     \x20 --shards N          shards of the embedded server (default 4)\n\
                     \x20 --workers N         workers of the embedded server (default 4)\n\
                     \x20 --io-threads N      I/O event loops of the embedded server (default 2)\n\
                     \x20 --out PATH          also write the JSON report to PATH\n\
                     \x20 --scrape-metrics    fetch GET /metrics after the run and print\n\
                     \x20                     the server-side p50/p99 next to the client's\n\
                     \x20                     (embedded runs also cross-check the request\n\
                     \x20                     counters against what this tool issued and\n\
                     \x20                     assert /debug/top names the skewed hottest\n\
                     \x20                     ingest source)\n\
                     \x20 --smoke             small CI-sized run (4 clients, 240 requests,\n\
                     \x20                     32 connections over 4 workers)"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.clients == 0 || opts.requests == 0 {
        fail("--clients and --requests must be at least 1");
    }
    if opts.pipeline_depth == 0 {
        fail("--pipeline-depth must be at least 1");
    }
    // Every client owns at least one socket, so the effective pool is never
    // smaller than --clients (the report records the effective number).
    let connections = if opts.connections == 0 {
        opts.clients
    } else {
        opts.connections.max(opts.clients)
    };

    // Embedded server unless an external one was named.
    let mut embedded = None;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            let config = ServeConfig {
                shards: opts.shards,
                workers: opts.workers,
                io_threads: opts.io_threads,
                batch_window_us: opts.batch_window_us,
                batch_max: opts.batch_max,
                ..ServeConfig::default()
            };
            let server = MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0")
                .unwrap_or_else(|e| fail(&format!("embedded server failed: {e}")));
            let addr = server
                .local_addr()
                .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
                .to_string();
            embedded = Some(
                server
                    .spawn()
                    .unwrap_or_else(|e| fail(&format!("spawn failed: {e}"))),
            );
            addr
        }
    };

    let per_client = opts.requests.div_ceil(opts.clients);
    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let addr = addr.clone();
                let seed = opts.seed.wrapping_add(client as u64);
                let write_ratio = opts.write_ratio;
                let delete_ratio = opts.delete_ratio;
                // Spread the connection pool over the clients; every client
                // owns at least one socket and rotates its requests across
                // its share, so `connections - clients` sockets sit idle at
                // any moment (the multiplexer must carry them for free).
                let own =
                    connections / opts.clients + usize::from(client < connections % opts.clients);
                let depth = opts.pipeline_depth;
                scope.spawn(move || {
                    run_client(
                        &addr,
                        seed,
                        per_client,
                        write_ratio,
                        delete_ratio,
                        own,
                        depth,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut write_ns: Vec<u64> = Vec::new();
    let mut read_ns: Vec<u64> = Vec::new();
    let mut delete_ns: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    let mut retried_429 = 0usize;
    for report in reports {
        write_ns.extend(report.write_ns);
        read_ns.extend(report.read_ns);
        delete_ns.extend(report.delete_ns);
        errors += report.errors;
        retried_429 += report.retried_429;
    }
    let mut all_ns: Vec<u64> = write_ns
        .iter()
        .chain(read_ns.iter())
        .chain(delete_ns.iter())
        .copied()
        .collect();
    write_ns.sort_unstable();
    read_ns.sort_unstable();
    delete_ns.sort_unstable();
    all_ns.sort_unstable();

    let total = all_ns.len() + errors;
    let throughput = total as f64 / elapsed.as_secs_f64();

    // Server-side view: scrape /metrics while the server is still up and
    // derive its own p50/p99 from the exported latency histograms.
    let server_view = if opts.scrape_metrics {
        match scrape_server_metrics(&addr) {
            Ok(view) => Some(view),
            Err(e) => {
                eprintln!("error: --scrape-metrics failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let server_fields = server_view
        .as_ref()
        .map(|view| {
            format!(
                ",\"server_requests_total\":{},\"server_p50_ms\":{:.3},\"server_p99_ms\":{:.3}",
                view.workload_requests, view.p50_ms, view.p99_ms
            )
        })
        .unwrap_or_default();
    let report = format!(
        "{{\"clients\":{},\"connections\":{},\"workers\":{},\"pipeline_depth\":{},\
         \"requests\":{},\"writes\":{},\
         \"reads\":{},\"deletes\":{},\"errors\":{},\"retried_429\":{},\
         \"write_ratio\":{},\"delete_ratio\":{},\"seed\":{},\"elapsed_s\":{:.3},\
         \"throughput_rps\":{:.1},\
         \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"write_p50_ms\":{:.3},\"write_p99_ms\":{:.3},\
         \"read_p50_ms\":{:.3},\"read_p99_ms\":{:.3},\"delete_p50_ms\":{:.3},\
         \"delete_p99_ms\":{:.3}{}}}",
        opts.clients,
        connections,
        opts.workers,
        opts.pipeline_depth,
        total,
        write_ns.len(),
        read_ns.len(),
        delete_ns.len(),
        errors,
        retried_429,
        opts.write_ratio,
        opts.delete_ratio,
        opts.seed,
        elapsed.as_secs_f64(),
        throughput,
        percentile_ms(&all_ns, 0.50),
        percentile_ms(&all_ns, 0.99),
        percentile_ms(&write_ns, 0.50),
        percentile_ms(&write_ns, 0.99),
        percentile_ms(&read_ns, 0.50),
        percentile_ms(&read_ns, 0.99),
        percentile_ms(&delete_ns, 0.50),
        percentile_ms(&delete_ns, 0.99),
        server_fields,
    );

    println!(
        "loadgen: {} requests ({} writes / {} reads / {} deletes) from {} clients over {} \
         keep-alive connections in {:.2}s",
        total,
        write_ns.len(),
        read_ns.len(),
        delete_ns.len(),
        opts.clients,
        connections,
        elapsed.as_secs_f64()
    );
    let client_p50 = percentile_ms(&all_ns, 0.50);
    let client_p99 = percentile_ms(&all_ns, 0.99);
    println!(
        "  throughput {throughput:.0} req/s, p50 {client_p50:.2} ms, p99 {client_p99:.2} ms, \
         errors {errors}"
    );
    if let Some(view) = &server_view {
        println!(
            "  server-side (/metrics): {} requests counted, p50 {:.2} ms, p99 {:.2} ms",
            view.workload_requests, view.p50_ms, view.p99_ms
        );
        // Client latency includes the socket round-trip; server latency is
        // parse→respond. Large gaps between the two views point at queueing
        // or measurement bugs, so flag anything beyond 2x.
        for (name, client, server) in [
            ("p50", client_p50, view.p50_ms),
            ("p99", client_p99, view.p99_ms),
        ] {
            if diverges_2x(client, server) {
                println!(
                    "  WARNING: {name} diverges >2x between client ({client:.2} ms) and \
                     server ({server:.2} ms) views"
                );
            }
        }
        // Embedded runs own all the traffic, so the server's counters must
        // account for exactly what this tool sent: every success, plus one
        // count per 429 answer that was retried.
        if opts.addr.is_none() && errors == 0 {
            let issued = (total + retried_429) as u64;
            if view.workload_requests != issued {
                eprintln!(
                    "error: /metrics counted {} workload requests but loadgen issued {issued} \
                     ({total} completed + {retried_429} retried 429s)",
                    view.workload_requests
                );
                std::process::exit(1);
            }
            println!("  server counters match: {issued} issued == {issued} counted");
            // The workload skews ~30% of fresh titles onto BRANDS[0], so
            // the windowed heavy-hitter sketch must name it the hottest
            // ingest source of the current window.
            match hottest_source(&addr) {
                Ok(Some(key)) if key == BRANDS[0] => {
                    println!("  hottest source agrees: /debug/top reports `{key}`");
                }
                Ok(Some(key)) => {
                    eprintln!(
                        "error: /debug/top reports hottest source `{key}`, expected `{}`",
                        BRANDS[0]
                    );
                    std::process::exit(1);
                }
                Ok(None) => {
                    println!("  /debug/top: analytics disabled; skipping hottest-source check");
                }
                Err(e) => {
                    eprintln!("error: GET /debug/top: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("{report}");
    if let Some(path) = &opts.out {
        std::fs::write(path, &report)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  report written to {path}");
    }

    if let Some(handle) = embedded {
        handle.shutdown();
    }
    if errors > 0 {
        eprintln!("error: {errors} request(s) failed");
        std::process::exit(1);
    }
}

/// The server's own view of the run, read back from `GET /metrics`.
struct ServerView {
    /// `multiem_requests_total` summed over the workload endpoints
    /// (`records`, `match`, `records_delete`), all status classes.
    workload_requests: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Endpoints this tool drives traffic at (the `endpoint` label values).
const WORKLOAD_ENDPOINTS: &[&str] = &["records", "match", "records_delete"];

/// Fetch `/metrics` and reduce the Prometheus text exposition to the
/// server-side request count and latency percentiles for the workload
/// endpoints.
fn scrape_server_metrics(addr: &str) -> Result<ServerView, String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let (status, _, body) = client
        .request_with_headers("GET", "/metrics", None)
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics answered {status}"));
    }

    let mut workload_requests = 0u64;
    // Cumulative histogram buckets per endpoint, in exposition order.
    let mut per_endpoint: HashMap<String, Vec<(f64, u64)>> = HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("multiem_requests_total{") {
            let (labels, value) = split_sample(rest)?;
            if label_value(labels, "endpoint").is_some_and(|e| WORKLOAD_ENDPOINTS.contains(&e)) {
                workload_requests += value as u64;
            }
        } else if let Some(rest) = line.strip_prefix("multiem_request_duration_seconds_bucket{") {
            let (labels, value) = split_sample(rest)?;
            let Some(endpoint) = label_value(labels, "endpoint") else {
                continue;
            };
            if !WORKLOAD_ENDPOINTS.contains(&endpoint) {
                continue;
            }
            let le = match label_value(labels, "le") {
                Some("+Inf") => f64::INFINITY,
                Some(text) => text
                    .parse()
                    .map_err(|_| format!("bad le bound `{text}` in: {line}"))?,
                None => continue,
            };
            per_endpoint
                .entry(endpoint.to_string())
                .or_default()
                .push((le, value as u64));
        }
    }

    // Per-endpoint buckets are cumulative; turn each into per-bucket deltas
    // and merge across endpoints keyed by the `le` bound (positive floats
    // order the same as their bit patterns, so the BTreeMap walks bounds
    // ascending).
    let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
    for buckets in per_endpoint.values() {
        let mut previous = 0u64;
        for &(le, cumulative) in buckets {
            *merged.entry(le.to_bits()).or_insert(0) += cumulative.saturating_sub(previous);
            previous = cumulative;
        }
    }

    Ok(ServerView {
        workload_requests,
        p50_ms: merged_quantile_ms(&merged, 0.50),
        p99_ms: merged_quantile_ms(&merged, 0.99),
    })
}

/// Split `endpoint="match",le="0.01"} 42` into its label body and value.
fn split_sample(rest: &str) -> Result<(&str, f64), String> {
    let (labels, value) = rest
        .split_once('}')
        .ok_or_else(|| format!("malformed sample line: {rest}"))?;
    let value = value
        .trim()
        .parse()
        .map_err(|_| format!("malformed sample value: {rest}"))?;
    Ok((labels, value))
}

/// The value of label `name` inside a Prometheus label body.
fn label_value<'a>(labels: &'a str, name: &str) -> Option<&'a str> {
    let marker = format!("{name}=\"");
    let start = labels.find(&marker)? + marker.len();
    let end = labels[start..].find('"')? + start;
    Some(&labels[start..end])
}

/// Nearest-rank quantile over merged histogram deltas, answered as the
/// matched bucket's upper bound in milliseconds.
fn merged_quantile_ms(merged: &BTreeMap<u64, u64>, q: f64) -> f64 {
    let total: u64 = merged.values().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total - 1) as f64 * q).round() as u64;
    let mut seen = 0u64;
    for (&bits, &count) in merged {
        seen += count;
        if seen > rank {
            let le = f64::from_bits(bits);
            if le.is_finite() {
                return le * 1000.0;
            }
            break;
        }
    }
    // Only the +Inf bucket matched; answer the largest finite bound.
    merged
        .keys()
        .map(|&bits| f64::from_bits(bits))
        .rfind(|le| le.is_finite())
        .map_or(0.0, |le| le * 1000.0)
}

/// The hottest current-window ingest source from `GET /debug/top`, or
/// `None` when the analytics layer is disabled on the server.
fn hottest_source(addr: &str) -> Result<Option<String>, String> {
    fn field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
        value
            .as_map()?
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, v)| v)
    }
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let (status, body) = client
        .request("GET", "/debug/top", None)
        .map_err(|e| format!("request failed: {e}"))?;
    if status != 200 {
        return Err(format!("answered {status}"));
    }
    let value: serde::Value = serde_json::from_str(&body).map_err(|e| format!("bad JSON: {e}"))?;
    if !matches!(field(&value, "enabled"), Some(serde::Value::Bool(true))) {
        return Ok(None);
    }
    Ok(field(&value, "sources")
        .and_then(|section| field(section, "current"))
        .and_then(serde::Value::as_seq)
        .and_then(|hitters| hitters.first())
        .and_then(|hitter| field(hitter, "key"))
        .and_then(serde::Value::as_str)
        .map(str::to_string))
}

/// True when `a` and `b` disagree by more than 2x (both must be measured).
fn diverges_2x(a: f64, b: f64) -> bool {
    a > 0.0 && b > 0.0 && (a.max(b) / a.min(b)) > 2.0
}

/// One request kind of the seeded mix.
enum Op {
    Write(String),
    Read(String),
    Delete((u64, u64, u64)),
}

/// Generate the next request of the seeded mix.
fn generate_op(
    rng: &mut ChaCha8Rng,
    written: &[String],
    inserted: &mut Vec<(u64, u64, u64)>,
    write_ratio: f64,
    delete_ratio: f64,
) -> Op {
    if !inserted.is_empty() && rng.gen_bool(delete_ratio) {
        return Op::Delete(inserted.swap_remove(rng.gen_range(0..inserted.len())));
    }
    if written.is_empty() || rng.gen_bool(write_ratio) {
        // A third of the writes are near-duplicates of earlier ones, so
        // the store actually exercises its merge path under load.
        let title = if !written.is_empty() && rng.gen_bool(0.33) {
            let base = &written[rng.gen_range(0..written.len())];
            format!("{base}{}", VARIANTS[rng.gen_range(0..VARIANTS.len())])
        } else {
            // Brand popularity is deliberately skewed: ~30% of fresh
            // titles lead with BRANDS[0], the rest pick uniformly. That
            // gives the server's heavy-hitter sketch a true hottest
            // source to find (embedded --scrape-metrics runs assert
            // /debug/top agrees).
            let brand = if rng.gen_bool(0.3) {
                BRANDS[0]
            } else {
                BRANDS[rng.gen_range(0..BRANDS.len())]
            };
            format!(
                "{} {} {}",
                brand,
                PRODUCTS[rng.gen_range(0..PRODUCTS.len())],
                rng.gen_range(0..10_000u32)
            )
        };
        Op::Write(title)
    } else {
        Op::Read(written[rng.gen_range(0..written.len())].clone())
    }
}

/// `(method, path, body)` of one op.
fn op_request(op: &Op) -> (&'static str, String, Option<String>) {
    match op {
        Op::Write(title) => (
            "POST",
            "/records".to_string(),
            Some(format!("{{\"records\":[[{}]]}}", json_string(title))),
        ),
        Op::Read(title) => (
            "POST",
            "/match".to_string(),
            Some(format!("{{\"record\":[{}]}}", json_string(title))),
        ),
        Op::Delete((shard, source, row)) => {
            ("DELETE", format!("/records/{shard}-{source}-{row}"), None)
        }
    }
}

/// Fold one successful response into the report and the client's
/// write/insert bookkeeping.
fn record_success(
    op: &Op,
    ns: u64,
    response: &str,
    report: &mut ClientReport,
    written: &mut Vec<String>,
    inserted: &mut Vec<(u64, u64, u64)>,
) {
    match op {
        Op::Write(title) => {
            report.write_ns.push(ns);
            written.push(title.clone());
            inserted.extend(extract_ids(response));
        }
        Op::Read(_) => report.read_ns.push(ns),
        Op::Delete(_) => report.delete_ns.push(ns),
    }
}

/// The parsed `Retry-After` seconds of a 429, as a capped sleep.
fn retry_after_sleep(headers: &[(String, String)]) {
    let wait = headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .and_then(|(_, value)| value.parse::<u64>().ok())
        .unwrap_or(1);
    std::thread::sleep(Duration::from_millis((wait * 1000).min(2000)));
}

fn run_client(
    addr: &str,
    seed: u64,
    requests: usize,
    write_ratio: f64,
    delete_ratio: f64,
    connections: usize,
    depth: usize,
) -> ClientReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut report = ClientReport::default();
    let mut written: Vec<String> = Vec::new();
    // Ids of this client's own inserts, consumed (at most once each) by
    // delete traffic.
    let mut inserted: Vec<(u64, u64, u64)> = Vec::new();
    // Open the whole connection share up front: all of them are live
    // keep-alive sockets for the duration, but only one carries requests
    // at any moment (the rest idle on the server's event loops).
    let mut clients: Vec<HttpClient> = Vec::with_capacity(connections);
    for _ in 0..connections {
        match HttpClient::connect(addr) {
            Ok(client) => clients.push(client),
            Err(_) => {
                report.errors = requests;
                return report;
            }
        }
    }
    // Requests go out in bursts of `depth` pipelined onto one socket, then
    // the responses come back in request order (`depth == 1` is classic
    // stop-and-wait). Latency is measured per response from the burst's
    // first write, so pipelined latencies include in-burst queueing — the
    // tradeoff pipelining buys throughput with.
    let mut sent = 0usize;
    let mut burst_index = 0usize;
    while sent < requests {
        let burst = depth.min(requests - sent);
        sent += burst;
        let conn = burst_index % connections;
        burst_index += 1;
        let ops: Vec<Op> = (0..burst)
            .map(|_| generate_op(&mut rng, &written, &mut inserted, write_ratio, delete_ratio))
            .collect();
        let start = Instant::now();
        let mut wrote = 0usize;
        for op in &ops {
            let (method, path, body) = op_request(op);
            if clients[conn].send(method, &path, body.as_deref()).is_err() {
                break;
            }
            wrote += 1;
        }
        let mut broken = wrote < ops.len();
        report.errors += ops.len() - wrote;
        for op in ops.iter().take(wrote) {
            if broken {
                report.errors += 1;
                continue;
            }
            match clients[conn].recv() {
                Ok((200, _, response)) => {
                    let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    record_success(op, ns, &response, &mut report, &mut written, &mut inserted);
                }
                Ok((429, headers, _)) => {
                    // A 429 obeys the server's Retry-After (capped) instead
                    // of counting as an error — the whole point of adaptive
                    // backpressure. The op retries alone, stop-and-wait:
                    // replaying it mid-pipeline would reorder the burst.
                    report.retried_429 += 1;
                    retry_after_sleep(&headers);
                    let mut attempts = 1;
                    loop {
                        attempts += 1;
                        let (method, path, body) = op_request(op);
                        let retry_start = Instant::now();
                        match client_request(&mut clients[conn], method, &path, &body) {
                            Ok((200, _, response)) => {
                                let ns = retry_start.elapsed().as_nanos().min(u128::from(u64::MAX))
                                    as u64;
                                record_success(
                                    op,
                                    ns,
                                    &response,
                                    &mut report,
                                    &mut written,
                                    &mut inserted,
                                );
                                break;
                            }
                            Ok((429, headers, _)) if attempts < 4 => {
                                report.retried_429 += 1;
                                retry_after_sleep(&headers);
                            }
                            Ok((_status, _, _)) => {
                                report.errors += 1;
                                break;
                            }
                            Err(_) => {
                                report.errors += 1;
                                broken = true;
                                break;
                            }
                        }
                    }
                }
                Ok((_status, _, _)) => report.errors += 1,
                Err(_) => {
                    report.errors += 1;
                    broken = true;
                }
            }
        }
        if broken {
            // The connection may be poisoned; reconnect that slot.
            match HttpClient::connect(addr) {
                Ok(fresh) => clients[conn] = fresh,
                Err(_) => return report, // server gone; stop this client
            }
        }
    }
    report
}

fn client_request(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: &Option<String>,
) -> std::io::Result<multiem_serve::http::FullResponse> {
    client.request_with_headers(method, path, body.as_deref())
}

/// `(shard, source, row)` triples out of a `POST /records` response body.
fn extract_ids(body: &str) -> Vec<(u64, u64, u64)> {
    let Ok(value) = serde_json::from_str::<serde::Value>(body) else {
        return Vec::new();
    };
    let field = |map: &serde::Value, name: &str| -> Option<u64> {
        map.as_map()?
            .iter()
            .find(|(key, _)| key == name)
            .and_then(|(_, v)| v.as_u64())
    };
    value
        .as_map()
        .and_then(|entries| {
            entries
                .iter()
                .find(|(key, _)| key == "results")
                .and_then(|(_, results)| results.as_seq())
        })
        .map(|results| {
            results
                .iter()
                .filter_map(|r| Some((field(r, "shard")?, field(r, "source")?, field(r, "row")?)))
                .collect()
        })
        .unwrap_or_default()
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{text}` for {flag}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
