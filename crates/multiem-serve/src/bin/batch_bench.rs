//! Batched hot-path gate: prove match micro-batching and group-commit
//! ingest pay for themselves, and fail the build when they stop doing so.
//!
//! Two legs, each run as interleaved best-of-N trials so machine noise
//! lands on both modes evenly:
//!
//! - **match**: pipelined clients hammer `POST /match` against an embedded
//!   server with coalescing on (`--batch-window-us`/`--batch-max`) and
//!   again with it off. Batch-friendly concurrency — many in-flight
//!   requests per worker — is exactly where one shared fan-out per batch
//!   should beat one fan-out per request.
//! - **ingest**: a WAL-durable server under `--fsync always` ingests the
//!   same record count as multi-record requests (whose per-shard groups
//!   share one WAL batch append + fsync — the group commit) and as
//!   single-record requests (one fsync each).
//!
//! `--gate` enforces: grouped ingest ≥ 1.5x single-record throughput,
//! batched match ≥ 1.3x unbatched throughput, batched match p99 ≤ 1.5x
//! unbatched p99, zero errors anywhere.
//!
//! ```bash
//! cargo run --release -p multiem-serve --bin batch_bench -- --gate --out BENCH_batch.json
//! ```

#![forbid(unsafe_code)]

use multiem_embed::HashedLexicalEncoder;
use multiem_serve::http::HttpClient;
use multiem_serve::metrics::percentile_ms;
use multiem_serve::{FsyncPolicy, MatchServer, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    trials: usize,
    /// Total `POST /match` requests per match trial.
    match_requests: usize,
    clients: usize,
    /// Pipelined requests in flight per client connection.
    depth: usize,
    shards: usize,
    workers: usize,
    /// Coalescing window of the batched mode, microseconds.
    window_us: u64,
    /// Batch size cap of the batched mode.
    batch_max: usize,
    /// Records seeded into the store before each match trial.
    prefill: usize,
    /// Total records per ingest trial.
    ingest_records: usize,
    /// Records per request in the grouped ingest mode.
    ingest_batch: usize,
    seed: u64,
    /// Enforce the throughput/p99/error gates (default: report only).
    gate: bool,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            trials: 3,
            match_requests: 4000,
            clients: 8,
            depth: 16,
            shards: 4,
            workers: 8,
            window_us: 500,
            batch_max: 32,
            prefill: 4096,
            ingest_records: 480,
            ingest_batch: 16,
            seed: 42,
            gate: false,
            out: None,
        }
    }
}

fn main() {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--trials" => opts.trials = parse(&value("--trials"), "--trials"),
            "--match-requests" => {
                opts.match_requests = parse(&value("--match-requests"), "--match-requests");
            }
            "--clients" => opts.clients = parse(&value("--clients"), "--clients"),
            "--depth" => opts.depth = parse(&value("--depth"), "--depth"),
            "--shards" => opts.shards = parse(&value("--shards"), "--shards"),
            "--workers" => opts.workers = parse(&value("--workers"), "--workers"),
            "--window-us" => opts.window_us = parse(&value("--window-us"), "--window-us"),
            "--batch-max" => opts.batch_max = parse(&value("--batch-max"), "--batch-max"),
            "--prefill" => opts.prefill = parse(&value("--prefill"), "--prefill"),
            "--ingest-records" => {
                opts.ingest_records = parse(&value("--ingest-records"), "--ingest-records");
            }
            "--ingest-batch" => {
                opts.ingest_batch = parse(&value("--ingest-batch"), "--ingest-batch");
            }
            "--seed" => opts.seed = parse(&value("--seed"), "--seed"),
            "--gate" => opts.gate = true,
            "--out" => opts.out = Some(value("--out")),
            "--help" | "-h" => {
                println!(
                    "batch_bench: gate the batched hot path (micro-batched match fan-out,\n\
                     group-commit ingest) against the unbatched baselines\n\n\
                     options:\n\
                     \x20 --trials N          best-of-N interleaved trials per mode (default 3)\n\
                     \x20 --match-requests N  /match requests per match trial (default 4000)\n\
                     \x20 --clients N         pipelined client connections (default 8)\n\
                     \x20 --depth N           pipelined requests per connection (default 16)\n\
                     \x20 --shards N          embedded server shards (default 4)\n\
                     \x20 --workers N         embedded server workers (default 8)\n\
                     \x20 --window-us N       batched mode coalescing window (default 500)\n\
                     \x20 --batch-max N       batched mode size cap (default 32)\n\
                     \x20 --prefill N         records seeded before each match trial\n\
                     \x20                     (default 4096)\n\
                     \x20 --ingest-records N  records per ingest trial (default 480)\n\
                     \x20 --ingest-batch N    records per request, grouped mode (default 16)\n\
                     \x20 --seed N            workload seed (default 42)\n\
                     \x20 --gate              enforce: grouped ingest >= 1.5x single,\n\
                     \x20                     batched match >= 1.3x unbatched, batched p99\n\
                     \x20                     <= 1.5x unbatched, zero errors\n\
                     \x20 --out PATH          also write the JSON report to PATH"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.trials == 0 || opts.clients == 0 || opts.depth == 0 {
        fail("--trials, --clients and --depth must be at least 1");
    }

    // Interleave (batched, unbatched) within every trial so load drift hits
    // both modes instead of biasing whichever ran last. Best-of-N per mode;
    // the p99 reported is the one of each mode's best-throughput trial.
    let mut best_batched = (0.0f64, 0.0f64);
    let mut best_direct = (0.0f64, 0.0f64);
    let mut errors = 0usize;
    for trial in 0..opts.trials {
        for batched in [true, false] {
            let (rps, p99_ms, errs) = match_trial(&opts, batched, trial);
            errors += errs;
            let best = if batched {
                &mut best_batched
            } else {
                &mut best_direct
            };
            if rps > best.0 {
                *best = (rps, p99_ms);
            }
            println!(
                "  match trial {}/{} batched={batched}: {rps:.0} req/s, p99 {p99_ms:.2} ms, \
                 errors {errs}",
                trial + 1,
                opts.trials
            );
        }
    }
    let mut best_grouped = 0.0f64;
    let mut best_single = 0.0f64;
    for trial in 0..opts.trials {
        for grouped in [true, false] {
            let (rps, errs) = ingest_trial(&opts, grouped, trial);
            errors += errs;
            let best = if grouped {
                &mut best_grouped
            } else {
                &mut best_single
            };
            *best = best.max(rps);
            println!(
                "  ingest trial {}/{} grouped={grouped}: {rps:.0} records/s, errors {errs}",
                trial + 1,
                opts.trials
            );
        }
    }

    let match_ratio = ratio(best_batched.0, best_direct.0);
    let ingest_ratio = ratio(best_grouped, best_single);
    let p99_ratio = ratio(best_batched.1, best_direct.1);
    let report = format!(
        "{{\"trials\":{},\"match_requests\":{},\"clients\":{},\"depth\":{},\"shards\":{},\
         \"workers\":{},\"window_us\":{},\"batch_max\":{},\"prefill\":{},\"ingest_records\":{},\
         \"ingest_batch\":{},\"seed\":{},\"errors\":{},\
         \"match_batched_rps\":{:.1},\"match_direct_rps\":{:.1},\"match_ratio\":{:.3},\
         \"match_batched_p99_ms\":{:.3},\"match_direct_p99_ms\":{:.3},\"p99_ratio\":{:.3},\
         \"ingest_grouped_rps\":{:.1},\"ingest_single_rps\":{:.1},\"ingest_ratio\":{:.3}}}",
        opts.trials,
        opts.match_requests,
        opts.clients,
        opts.depth,
        opts.shards,
        opts.workers,
        opts.window_us,
        opts.batch_max,
        opts.prefill,
        opts.ingest_records,
        opts.ingest_batch,
        opts.seed,
        errors,
        best_batched.0,
        best_direct.0,
        match_ratio,
        best_batched.1,
        best_direct.1,
        p99_ratio,
        best_grouped,
        best_single,
        ingest_ratio,
    );
    println!(
        "batch_bench: match batched {:.0} vs direct {:.0} req/s ({match_ratio:.2}x), \
         ingest grouped {best_grouped:.0} vs single {best_single:.0} records/s \
         ({ingest_ratio:.2}x), p99 ratio {p99_ratio:.2}x, errors {errors}",
        best_batched.0, best_direct.0
    );
    println!("{report}");
    if let Some(path) = &opts.out {
        std::fs::write(path, &report)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  report written to {path}");
    }

    if opts.gate {
        let mut failed = false;
        if errors > 0 {
            eprintln!("error: {errors} request(s) failed across the trials");
            failed = true;
        }
        if ingest_ratio < 1.5 {
            eprintln!(
                "error: grouped ingest is only {ingest_ratio:.2}x single-record throughput \
                 (gate: >= 1.5x)"
            );
            failed = true;
        }
        if match_ratio < 1.3 {
            eprintln!(
                "error: batched match is only {match_ratio:.2}x unbatched throughput \
                 (gate: >= 1.3x)"
            );
            failed = true;
        }
        if p99_ratio > 1.5 {
            eprintln!(
                "error: batched match p99 is {p99_ratio:.2}x the unbatched p99 (gate: <= 1.5x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("  all gates passed (ingest >= 1.5x, match >= 1.3x, p99 <= 1.5x, 0 errors)");
    }
}

/// `a / b`, `0.0` when the denominator is unmeasured.
fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

/// One match trial: fresh embedded server (coalescing on or off), prefilled
/// store, pipelined match-only load. Returns `(req/s, client p99 ms,
/// errors)`.
fn match_trial(opts: &Options, batched: bool, trial: usize) -> (f64, f64, usize) {
    let mut config = ServeConfig {
        shards: opts.shards,
        workers: opts.workers,
        batch_window_us: if batched { opts.window_us } else { 0 },
        batch_max: opts.batch_max,
        ..ServeConfig::default()
    };
    config.obs.log_level = multiem_serve::obs::Level::Error;
    let server = MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("embedded server failed: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
        .to_string();
    let handle = server
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn failed: {e}")));

    // Prefill so matches scan a real candidate set: the per-query cost a
    // batch amortizes is the representative-index pass over these.
    prefill(&addr, opts.seed, opts.prefill);

    let per_client = opts.match_requests.div_ceil(opts.clients);
    let started = Instant::now();
    let results: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let addr = addr.clone();
                let seed = opts
                    .seed
                    .wrapping_add(client as u64)
                    .wrapping_add(trial as u64 * 1000);
                scope.spawn(move || match_client(&addr, seed, per_client, opts.depth))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    handle.shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    for (ns, errs) in results {
        latencies.extend(ns);
        errors += errs;
    }
    latencies.sort_unstable();
    let rps = latencies.len() as f64 / elapsed.as_secs_f64();
    (rps, percentile_ms(&latencies, 0.99), errors)
}

/// Seed the store with `count` distinct catalog titles (wide token space so
/// they stay separate clusters and prefill is one index pass per insert).
fn prefill(addr: &str, seed: u64, count: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut client =
        HttpClient::connect(addr).unwrap_or_else(|e| fail(&format!("prefill connect: {e}")));
    let mut remaining = count;
    while remaining > 0 {
        let n = remaining.min(32);
        remaining -= n;
        let records: Vec<String> = (0..n)
            .map(|_| {
                // No token shared between any two titles (and none with the
                // probe stream): every record stays its own cluster, so the
                // index scanned per match really holds ~`prefill` entries.
                format!(
                    "[\"c{} c{} c{}\"]",
                    rng.gen_range(0..1_000_000_000u32),
                    rng.gen_range(0..1_000_000_000u32),
                    rng.gen_range(0..1_000_000_000u32),
                )
            })
            .collect();
        let body = format!("{{\"records\":[{}]}}", records.join(","));
        match client.request("POST", "/records", Some(&body)) {
            Ok((200, _)) => {}
            Ok((status, body)) => fail(&format!("prefill answered {status}: {body}")),
            Err(e) => fail(&format!("prefill failed: {e}")),
        }
    }
}

/// Pipelined match-only client: bursts of `depth` requests per socket, with
/// per-response latency measured from the burst's first write. Probes are
/// drawn from a token space disjoint from the catalog's, so each one pays
/// the full candidate scan (the cost micro-batching amortizes) without the
/// per-hit mutual-top-K verification that a match would add on top.
fn match_client(addr: &str, seed: u64, requests: usize, depth: usize) -> (Vec<u64>, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0usize;
    let Ok(mut client) = HttpClient::connect(addr) else {
        return (latencies, requests);
    };
    let mut sent = 0usize;
    while sent < requests {
        let burst = depth.min(requests - sent);
        sent += burst;
        let start = Instant::now();
        let mut wrote = 0usize;
        for _ in 0..burst {
            let body = format!(
                "{{\"record\":[\"p{} p{}\"]}}",
                rng.gen_range(0..1_000_000_000u32),
                rng.gen_range(0..1_000_000_000u32),
            );
            if client.send("POST", "/match", Some(&body)).is_err() {
                break;
            }
            wrote += 1;
        }
        errors += burst - wrote;
        for _ in 0..wrote {
            match client.recv() {
                Ok((200, _, _)) => {
                    latencies.push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                _ => errors += 1,
            }
        }
    }
    (latencies, errors)
}

/// One ingest trial: WAL-durable server with `--fsync always`, the same
/// record total ingested as `ingest_batch`-record requests (grouped — the
/// per-shard groups share one WAL batch append + fsync) or as one-record
/// requests (one fsync each). Returns `(records/s, errors)`.
fn ingest_trial(opts: &Options, grouped: bool, trial: usize) -> (f64, usize) {
    let dir = std::env::temp_dir().join(format!(
        "multiem-batch-bench-{}-{trial}-{grouped}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("temp dir: {e}")));
    let mut config = ServeConfig {
        shards: opts.shards,
        workers: opts.workers,
        data_dir: Some(PathBuf::from(&dir)),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    };
    config.obs.log_level = multiem_serve::obs::Level::Error;
    let server = MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("embedded server failed: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
        .to_string();
    let handle = server
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn failed: {e}")));

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(trial as u64));
    let batch = if grouped { opts.ingest_batch.max(1) } else { 1 };
    let mut remaining = opts.ingest_records;
    let mut ingested = 0usize;
    let mut errors = 0usize;
    let mut client =
        HttpClient::connect(&addr).unwrap_or_else(|e| fail(&format!("ingest connect: {e}")));
    let started = Instant::now();
    while remaining > 0 {
        let n = batch.min(remaining);
        remaining -= n;
        let records: Vec<String> = (0..n)
            .map(|_| {
                format!(
                    "[\"brand product {} {}\"]",
                    rng.gen_range(0..100_000u32),
                    rng.gen_range(0..100_000u32)
                )
            })
            .collect();
        let body = format!("{{\"records\":[{}]}}", records.join(","));
        match client.request("POST", "/records", Some(&body)) {
            Ok((200, _)) => ingested += n,
            _ => errors += n,
        }
    }
    let elapsed = started.elapsed();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    (ingested as f64 / elapsed.as_secs_f64(), errors)
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{text}` for {flag}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
