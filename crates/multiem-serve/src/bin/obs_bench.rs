//! Telemetry-overhead gate: prove observability is cheap enough to leave on.
//!
//! Runs the same seeded mixed workload twice — against an embedded server
//! with full telemetry (histograms, per-stage spans, sampled traces, and
//! the workload-analytics layer: rolling windows, top-K sketches,
//! slow-request exemplars) and
//! against one started with the `--no-telemetry` kill switch — interleaving
//! best-of-N trials so machine noise hits both modes evenly, then reports
//! the throughput cost of telemetry as a percentage. CI runs this with
//! `--gate 5` and fails the build if instrumenting the request path ever
//! costs more than 5% of throughput.
//!
//! ```bash
//! cargo run --release -p multiem-serve --bin obs_bench -- --gate 5 --out BENCH_obs.json
//! ```

#![forbid(unsafe_code)]

use multiem_embed::HashedLexicalEncoder;
use multiem_serve::http::HttpClient;
use multiem_serve::{MatchServer, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

struct Options {
    trials: usize,
    requests: usize,
    clients: usize,
    shards: usize,
    workers: usize,
    seed: u64,
    /// Maximum tolerated telemetry overhead in percent (None = report only).
    gate: Option<f64>,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            trials: 3,
            requests: 3000,
            clients: 4,
            shards: 4,
            workers: 4,
            seed: 42,
            gate: None,
            out: None,
        }
    }
}

fn main() {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--trials" => opts.trials = parse(&value("--trials"), "--trials"),
            "--requests" => opts.requests = parse(&value("--requests"), "--requests"),
            "--clients" => opts.clients = parse(&value("--clients"), "--clients"),
            "--shards" => opts.shards = parse(&value("--shards"), "--shards"),
            "--workers" => opts.workers = parse(&value("--workers"), "--workers"),
            "--seed" => opts.seed = parse(&value("--seed"), "--seed"),
            "--gate" => opts.gate = Some(parse(&value("--gate"), "--gate")),
            "--out" => opts.out = Some(value("--out")),
            "--help" | "-h" => {
                println!(
                    "obs_bench: measure the throughput cost of telemetry\n\n\
                     options:\n\
                     \x20 --trials N     best-of-N interleaved trials per mode (default 3)\n\
                     \x20 --requests N   requests per trial (default 3000)\n\
                     \x20 --clients N    concurrent client threads (default 4)\n\
                     \x20 --shards N     embedded server shards (default 4)\n\
                     \x20 --workers N    embedded server workers (default 4)\n\
                     \x20 --seed N       workload seed (default 42)\n\
                     \x20 --gate PCT     exit non-zero if telemetry costs more than\n\
                     \x20                PCT percent of throughput (default: report only)\n\
                     \x20 --out PATH     also write the JSON report to PATH"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.trials == 0 || opts.requests == 0 || opts.clients == 0 {
        fail("--trials, --requests and --clients must be at least 1");
    }

    // Interleave trials (on, off, on, off, ...) so drift in machine load
    // lands on both modes instead of biasing whichever ran last.
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for trial in 0..opts.trials {
        for telemetry in [true, false] {
            let rps = run_trial(&opts, telemetry, trial);
            let best = if telemetry {
                &mut best_on
            } else {
                &mut best_off
            };
            *best = best.max(rps);
            println!(
                "  trial {}/{} telemetry={}: {rps:.0} req/s",
                trial + 1,
                opts.trials,
                if telemetry { "on" } else { "off" }
            );
        }
    }

    let overhead_pct = if best_off > 0.0 {
        (best_off - best_on) / best_off * 100.0
    } else {
        0.0
    };
    let report = format!(
        "{{\"trials\":{},\"requests\":{},\"clients\":{},\"shards\":{},\"workers\":{},\
         \"seed\":{},\"telemetry_on_rps\":{:.1},\"telemetry_off_rps\":{:.1},\
         \"overhead_pct\":{:.2}}}",
        opts.trials,
        opts.requests,
        opts.clients,
        opts.shards,
        opts.workers,
        opts.seed,
        best_on,
        best_off,
        overhead_pct
    );
    println!(
        "obs_bench: telemetry on {best_on:.0} req/s, off {best_off:.0} req/s, \
         overhead {overhead_pct:.2}%"
    );
    println!("{report}");
    if let Some(path) = &opts.out {
        std::fs::write(path, &report)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  report written to {path}");
    }
    if let Some(gate) = opts.gate {
        if overhead_pct > gate {
            eprintln!("error: telemetry overhead {overhead_pct:.2}% exceeds the {gate}% gate");
            std::process::exit(1);
        }
        println!("  within the {gate}% gate");
    }
}

/// One trial: fresh embedded server, seeded mixed workload, throughput out.
fn run_trial(opts: &Options, telemetry: bool, trial: usize) -> f64 {
    let mut config = ServeConfig {
        shards: opts.shards,
        workers: opts.workers,
        ..ServeConfig::default()
    };
    config.obs.telemetry = telemetry;
    if telemetry {
        // Realistic "on" shape: sample some traces too, not just histograms,
        // and run the full analytics layer (rolling windows, heavy-hitter
        // sketches, slow-request exemplars) at its default settings — the
        // gate covers everything `--no-telemetry` turns off.
        config.obs.trace_sample_rate = 0.01;
        config.obs.window_secs = 60;
        config.obs.topk = 16;
        config.obs.exemplars = 8;
    }
    // Keep trace/log output off the bench's stderr.
    config.obs.log_level = multiem_serve::obs::Level::Error;

    let server = MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("embedded server failed: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
        .to_string();
    let handle = server
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn failed: {e}")));

    let per_client = opts.requests.div_ceil(opts.clients);
    let started = Instant::now();
    let completed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let addr = addr.clone();
                let seed = opts
                    .seed
                    .wrapping_add(client as u64)
                    .wrapping_add(trial as u64 * 1000);
                scope.spawn(move || run_client(&addr, seed, per_client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum()
    });
    let elapsed = started.elapsed();
    handle.shutdown();

    if completed < per_client * opts.clients {
        fail(&format!(
            "trial dropped requests: {completed} of {} completed",
            per_client * opts.clients
        ));
    }
    completed as f64 / elapsed.as_secs_f64()
}

/// Issue `requests` mixed writes/reads; count how many answered 200.
fn run_client(addr: &str, seed: u64, requests: usize) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut client = match HttpClient::connect(addr) {
        Ok(client) => client,
        Err(_) => return 0,
    };
    let mut written: Vec<String> = Vec::new();
    let mut completed = 0usize;
    for _ in 0..requests {
        let (path, body) = if written.is_empty() || rng.gen_bool(0.6) {
            let title = format!("brand product {}", rng.gen_range(0..100_000u32));
            written.push(title.clone());
            ("/records", format!("{{\"records\":[[\"{title}\"]]}}"))
        } else {
            let title = &written[rng.gen_range(0..written.len())];
            ("/match", format!("{{\"record\":[\"{title}\"]}}"))
        };
        if let Ok((200, _, _)) = client.request_with_headers("POST", path, Some(&body)) {
            completed += 1;
        }
    }
    completed
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{text}` for {flag}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
