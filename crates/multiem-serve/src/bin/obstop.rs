//! `obstop`: a live terminal dashboard over a running server's analytics.
//!
//! Polls `GET /healthz`, `/debug/window`, `/debug/top` and `/debug/storage`
//! on an interval and renders what an operator wants during an incident —
//! windowed rates and tail latencies, the heavy hitters driving the load,
//! and per-shard storage health — without leaving the terminal:
//!
//! ```bash
//! cargo run --release -p multiem-serve --bin obstop -- \
//!     --addr 127.0.0.1:7878 --interval-ms 2000
//! ```
//!
//! `--iterations N` renders N frames and exits (use `1` for a one-shot
//! snapshot in scripts); the default runs until interrupted.

#![forbid(unsafe_code)]

use multiem_serve::http::HttpClient;
use serde::Value;

struct Options {
    addr: String,
    interval_ms: u64,
    /// Frames to render; `0` = until interrupted.
    iterations: u64,
    /// Skip the ANSI clear (for piping into a file).
    no_clear: bool,
}

fn main() {
    let mut opts = Options {
        addr: String::new(),
        interval_ms: 2_000,
        iterations: 0,
        no_clear: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--interval-ms" => opts.interval_ms = parse(&value("--interval-ms"), "--interval-ms"),
            "--iterations" => opts.iterations = parse(&value("--iterations"), "--iterations"),
            "--no-clear" => opts.no_clear = true,
            "--help" | "-h" => {
                println!(
                    "obstop: live terminal dashboard over a multiem-serve instance\n\n\
                     options:\n\
                     \x20 --addr HOST:PORT  server to watch (required)\n\
                     \x20 --interval-ms N   refresh interval (default 2000)\n\
                     \x20 --iterations N    render N frames then exit (default: forever)\n\
                     \x20 --no-clear        do not clear the screen between frames"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.addr.is_empty() {
        fail("--addr is required (try --help)");
    }

    let mut frame = 0u64;
    loop {
        frame += 1;
        match render_frame(&opts) {
            Ok(text) => {
                if !opts.no_clear {
                    // Clear + home; the dashboard repaints in place.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{text}");
            }
            Err(e) => println!("obstop: {} unreachable: {e}", opts.addr),
        }
        if opts.iterations > 0 && frame >= opts.iterations {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms.max(100)));
    }
}

/// Fetch every surface and lay out one dashboard frame.
fn render_frame(opts: &Options) -> Result<String, String> {
    let mut client = HttpClient::connect(&opts.addr).map_err(|e| format!("connect failed: {e}"))?;
    let health = fetch(&mut client, "/healthz")?;
    let window = fetch(&mut client, "/debug/window")?;
    let top = fetch(&mut client, "/debug/top")?;
    let storage = fetch(&mut client, "/debug/storage")?;

    let mut out = String::new();
    header(&mut out, opts, &health);
    window_section(&mut out, &window);
    top_section(&mut out, &top);
    storage_section(&mut out, &storage);
    Ok(out)
}

fn fetch(client: &mut HttpClient, path: &str) -> Result<Value, String> {
    let (status, body) = client
        .request("GET", path, None)
        .map_err(|e| format!("GET {path}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}"));
    }
    serde_json::from_str(&body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
}

fn header(out: &mut String, opts: &Options, health: &Value) {
    let uptime = num(health, "uptime_seconds");
    let shards = int(health, "shards");
    let epoch = int(health, "checkpoint_epoch");
    let version = field(health, "version")
        .and_then(Value::as_str)
        .unwrap_or("?");
    out.push_str(&format!(
        "multiem-serve {version} @ {}  up {uptime:.0}s  {shards} shard(s)  \
         checkpoint epoch {epoch}\n",
        opts.addr
    ));
}

fn window_section(out: &mut String, window: &Value) {
    if !enabled(window) {
        out.push_str("\n[window]  analytics disabled (--window-secs 0 or --no-telemetry)\n");
        return;
    }
    out.push_str(&format!(
        "\n[window]  last {:.0}s of a {}s rolling window\n",
        num(window, "covered_secs"),
        int(window, "window_secs"),
    ));
    out.push_str(&format!(
        "  {:<16} {:>10} {:>10} {:>10} {:>10}\n",
        "endpoint", "count", "rate/s", "p50 ms", "p99 ms"
    ));
    for endpoint in field(window, "endpoints")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
    {
        out.push_str(&format!(
            "  {:<16} {:>10} {:>10.1} {:>10.2} {:>10.2}\n",
            field(endpoint, "endpoint")
                .and_then(Value::as_str)
                .unwrap_or("?"),
            int(endpoint, "count"),
            num(endpoint, "rate_rps"),
            num(endpoint, "p50_ms"),
            num(endpoint, "p99_ms"),
        ));
    }
    if let Some(fsync) = field(window, "fsync") {
        if int(fsync, "count") > 0 {
            out.push_str(&format!(
                "  {:<16} {:>10} {:>10} {:>10.2} {:>10.2}\n",
                "wal fsync",
                int(fsync, "count"),
                "-",
                num(fsync, "p50_ms"),
                num(fsync, "p99_ms"),
            ));
        }
    }
}

fn top_section(out: &mut String, top: &Value) {
    if !enabled(top) {
        return;
    }
    for (label, key) in [
        ("hot sources", "sources"),
        ("hot shards", "shards"),
        ("hot entities", "entities"),
    ] {
        let hitters = field(top, key)
            .and_then(|section| field(section, "current"))
            .and_then(Value::as_seq)
            .unwrap_or(&[]);
        if hitters.is_empty() {
            continue;
        }
        out.push_str(&format!("\n[{label}]  (this window, count±error)\n"));
        for hitter in hitters.iter().take(8) {
            out.push_str(&format!(
                "  {:<32} {:>8}±{}\n",
                field(hitter, "key").and_then(Value::as_str).unwrap_or("?"),
                int(hitter, "count"),
                int(hitter, "error"),
            ));
        }
    }
}

fn storage_section(out: &mut String, storage: &Value) {
    let hits = int(storage, "cache_hits");
    let misses = int(storage, "cache_misses");
    out.push_str(&format!(
        "\n[storage]  cache {hits} hits / {misses} misses ({:.1}% hit rate)  \
         wal {} B  fsync p99 {:.2} ms\n",
        num(storage, "cache_hit_rate") * 100.0,
        int(storage, "wal_bytes"),
        num(storage, "fsync_window_p99_ms"),
    ));
    for shard in field(storage, "shards")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
    {
        let segments = field(shard, "segment_files")
            .and_then(Value::as_seq)
            .unwrap_or(&[]);
        let min_live = segments
            .iter()
            .map(|s| num(s, "live_ratio"))
            .fold(f64::INFINITY, f64::min);
        out.push_str(&format!(
            "  shard {:<3} {:>9} records  {:>6} deleted  {:>3} segment(s)  min live {}\n",
            int(shard, "shard"),
            int(shard, "records"),
            int(shard, "deleted_records"),
            segments.len(),
            if segments.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}%", min_live * 100.0)
            },
        ));
    }
}

/// Whether a `/debug/*` body reports the analytics layer as on.
fn enabled(value: &Value) -> bool {
    matches!(field(value, "enabled"), Some(Value::Bool(true)))
}

fn field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    value
        .as_map()?
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
}

fn num(value: &Value, name: &str) -> f64 {
    field(value, name).and_then(Value::as_f64).unwrap_or(0.0)
}

fn int(value: &Value, name: &str) -> u64 {
    field(value, name).and_then(Value::as_u64).unwrap_or(0)
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{text}` for {flag}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
