//! Synthetic multi-source benchmark datasets for the MultiEM reproduction.
//!
//! The paper evaluates on six public datasets (Geo, Music-20/200/2000, Person,
//! Shopee) that are not redistributable here. This crate generates synthetic
//! analogues with the same *structural* properties the evaluation depends on:
//!
//! * several source tables sharing a schema (4–20 sources, Table III);
//! * each real-world entity appears in 2+ sources with **different surface
//!   forms** (typos, abbreviations, token drops/reorders, missing values,
//!   numeric jitter) — the corruption model in [`corruption`];
//! * schemas mixing informative attributes (title, artist, name, …) with
//!   uninformative ones (opaque ids, record numbers, track length) that the
//!   enhanced-entity-representation module is supposed to reject (Table VII);
//! * a configurable scale so the same generator covers the 3 k-entity Geo
//!   analogue and the multi-million-entity Music-2000/Person analogues.
//!
//! Entry points: the per-domain factories in [`domains`], the generic
//! [`generator::MultiSourceGenerator`], and the Table III presets in
//! [`benchmarks`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod corruption;
pub mod domains;
pub mod generator;
pub mod vocab;

pub use benchmarks::{benchmark_dataset, benchmark_specs, BenchmarkDataset, BenchmarkSpec};
pub use corruption::{CorruptionConfig, Corruptor};
pub use domains::{Domain, EntityFactory};
pub use generator::{DatasetStats, GeneratorConfig, MultiSourceGenerator};
