//! Preset benchmark datasets mirroring Table III of the paper.
//!
//! The presets reproduce the *structure* of the six evaluation datasets
//! (domain, number of sources, schema, ratio of matched tuples to singletons,
//! corruption profile). Entity counts are controlled by a `scale` factor so
//! the same presets drive quick laptop runs (`scale = 0.1`, the default of the
//! bench harness) and full-size runs (`scale = 1.0`, matching the paper's
//! cardinalities).

use crate::corruption::{CorruptionConfig, Corruptor};
use crate::domains::Domain;
use crate::generator::{DatasetStats, GeneratorConfig, MultiSourceGenerator};
use multiem_table::Dataset;
use serde::{Deserialize, Serialize};

/// Specification of one benchmark dataset preset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Dataset name (e.g. "geo", "music-20").
    pub name: String,
    /// Domain of the entity factory.
    pub domain: Domain,
    /// Number of source tables.
    pub num_sources: usize,
    /// Number of ground-truth tuples at `scale = 1.0`.
    pub full_tuples: usize,
    /// Number of singleton entities at `scale = 1.0`.
    pub full_singletons: usize,
    /// Minimum tuple size.
    pub min_tuple_size: usize,
    /// Maximum tuple size.
    pub max_tuple_size: usize,
    /// Corruption profile.
    pub corruption: CorruptionConfig,
    /// Generator seed.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Scale the tuple/singleton counts, keeping at least a handful of each.
    pub fn scaled(&self, scale: f64) -> GeneratorConfig {
        let tuples = ((self.full_tuples as f64 * scale).round() as usize).max(10);
        let singletons = ((self.full_singletons as f64 * scale).round() as usize).max(5);
        GeneratorConfig {
            name: self.name.clone(),
            num_sources: self.num_sources,
            num_tuples: tuples,
            num_singletons: singletons,
            min_tuple_size: self.min_tuple_size,
            max_tuple_size: self.max_tuple_size,
            seed: self.seed,
        }
    }

    /// Generate the dataset at the given scale.
    pub fn generate(&self, scale: f64) -> Dataset {
        let factory = self.domain.factory();
        let corruptor = Corruptor::new(self.corruption.clone());
        MultiSourceGenerator::new(self.scaled(scale)).generate(factory.as_ref(), &corruptor)
    }
}

/// A generated benchmark dataset together with its statistics.
#[derive(Debug, Clone)]
pub struct BenchmarkDataset {
    /// The preset it came from.
    pub spec: BenchmarkSpec,
    /// The generated dataset (ground truth attached).
    pub dataset: Dataset,
    /// Table III-style statistics.
    pub stats: DatasetStats,
}

/// The six presets of Table III.
///
/// Tuple/singleton counts at `scale = 1.0` are chosen so that total entities,
/// tuples and pairs land close to the paper's numbers:
///
/// | name        | srcs | entities  | tuples  | pairs (paper) |
/// |-------------|------|-----------|---------|---------------|
/// | geo         | 4    | 3,054     | 820     | 4,391         |
/// | music-20    | 5    | 19,375    | 5,000   | 16,250        |
/// | music-200   | 5    | 193,750   | 50,000  | 162,500       |
/// | music-2000  | 5    | 1,937,500 | 500,000 | 1,625,000     |
/// | person      | 5    | 5,000,000 | 500,000 | 3,331,384     |
/// | shopee      | 20   | 32,563    | 10,962  | 54,488        |
pub fn benchmark_specs() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "geo".into(),
            domain: Domain::Geo,
            num_sources: 4,
            full_tuples: 820,
            full_singletons: 60,
            min_tuple_size: 3,
            max_tuple_size: 4,
            corruption: CorruptionConfig::default(),
            seed: 1001,
        },
        BenchmarkSpec {
            name: "music-20".into(),
            domain: Domain::Music,
            num_sources: 5,
            full_tuples: 5_000,
            full_singletons: 4_000,
            min_tuple_size: 2,
            max_tuple_size: 4,
            corruption: CorruptionConfig::default(),
            seed: 1002,
        },
        BenchmarkSpec {
            name: "music-200".into(),
            domain: Domain::Music,
            num_sources: 5,
            full_tuples: 50_000,
            full_singletons: 40_000,
            min_tuple_size: 2,
            max_tuple_size: 4,
            corruption: CorruptionConfig::default(),
            seed: 1003,
        },
        BenchmarkSpec {
            name: "music-2000".into(),
            domain: Domain::Music,
            num_sources: 5,
            full_tuples: 500_000,
            full_singletons: 400_000,
            min_tuple_size: 2,
            max_tuple_size: 4,
            corruption: CorruptionConfig::default(),
            seed: 1004,
        },
        BenchmarkSpec {
            name: "person".into(),
            domain: Domain::Person,
            num_sources: 5,
            full_tuples: 500_000,
            full_singletons: 2_900_000,
            min_tuple_size: 3,
            max_tuple_size: 5,
            corruption: CorruptionConfig::light(),
            seed: 1005,
        },
        BenchmarkSpec {
            name: "shopee".into(),
            domain: Domain::Product,
            num_sources: 20,
            full_tuples: 10_962,
            full_singletons: 500,
            min_tuple_size: 2,
            max_tuple_size: 4,
            corruption: CorruptionConfig::heavy(),
            seed: 1006,
        },
    ]
}

/// Generate one named benchmark dataset at a given scale.
///
/// Returns `None` if the name does not match any preset.
pub fn benchmark_dataset(name: &str, scale: f64) -> Option<BenchmarkDataset> {
    let spec = benchmark_specs().into_iter().find(|s| s.name == name)?;
    let dataset = spec.generate(scale);
    let stats = DatasetStats::from_dataset(spec.domain.name(), &dataset);
    Some(BenchmarkDataset {
        spec,
        dataset,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_presets_matching_table_iii_structure() {
        let specs = benchmark_specs();
        assert_eq!(specs.len(), 6);
        let geo = &specs[0];
        assert_eq!(geo.num_sources, 4);
        let shopee = specs.iter().find(|s| s.name == "shopee").unwrap();
        assert_eq!(shopee.num_sources, 20);
        let person = specs.iter().find(|s| s.name == "person").unwrap();
        assert_eq!(person.domain.name(), "person");
    }

    #[test]
    fn scaled_counts_shrink_with_scale() {
        let spec = &benchmark_specs()[1]; // music-20
        let full = spec.scaled(1.0);
        let small = spec.scaled(0.01);
        assert_eq!(full.num_tuples, 5_000);
        assert!(small.num_tuples < full.num_tuples);
        assert!(small.num_tuples >= 10);
    }

    #[test]
    fn generate_small_geo_dataset() {
        let bd = benchmark_dataset("geo", 0.05).unwrap();
        assert_eq!(bd.stats.sources, 4);
        assert_eq!(bd.stats.attributes, 3);
        assert!(bd.stats.tuples >= 10);
        assert!(bd.stats.entities > bd.stats.tuples * 2);
        assert!(bd.stats.pairs >= bd.stats.tuples);
        assert_eq!(bd.dataset.name(), "geo");
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(benchmark_dataset("no-such-dataset", 0.1).is_none());
    }

    #[test]
    fn full_scale_music20_close_to_paper_counts() {
        // Only check the configured counts (not a full generation, which would
        // be slow in unit tests).
        let spec = benchmark_specs()
            .into_iter()
            .find(|s| s.name == "music-20")
            .unwrap();
        let cfg = spec.scaled(1.0);
        // Expected entities ≈ tuples * E[size] + singletons
        //                   ≈ 5000 * 3 + 4000 = 19,000 ≈ 19,375 (paper).
        let expected_entities = cfg.num_tuples * 3 + cfg.num_singletons;
        assert!((expected_entities as i64 - 19_375).abs() < 1_500);
    }
}
