//! Word lists used by the domain-specific entity factories.
//!
//! The lists are intentionally modest in size; factories combine several of
//! them (for example `ADJECTIVES x NOUNS x BRANDS`) so the space of distinct
//! real-world entities is far larger than any single list.

/// Given names used by the person domain.
pub const GIVEN_NAMES: &[&str] = &[
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "charles", "karen", "christopher", "lisa", "daniel", "nancy", "matthew", "betty", "anthony",
    "sandra", "mark", "margaret", "donald", "ashley", "steven", "kimberly", "andrew", "emily",
    "paul", "donna", "joshua", "michelle", "kenneth", "carol", "kevin", "amanda", "brian",
    "melissa", "george", "deborah", "timothy", "stephanie", "ronald", "rebecca", "jason", "laura",
    "edward", "helen", "jeffrey", "sharon", "ryan", "cynthia", "jacob", "kathleen", "gary", "amy",
    "nicholas", "angela", "eric", "shirley", "jonathan", "brenda", "stephen", "emma", "larry",
    "anna", "justin", "pamela", "scott", "nicole", "brandon", "samantha",
];

/// Surnames used by the person domain.
pub const SURNAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts", "gomez", "phillips", "evans", "turner",
    "diaz", "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris", "morales",
    "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper", "peterson", "bailey",
    "reed", "kelly", "howard", "ramos", "kim", "cox", "ward", "richardson",
];

/// Suburb / locality names used by the person domain.
pub const SUBURBS: &[&str] = &[
    "richmond", "fitzroy", "carlton", "brunswick", "prahran", "toorak", "hawthorn", "kew",
    "northcote", "thornbury", "preston", "reservoir", "coburg", "essendon", "moonee ponds",
    "footscray", "yarraville", "williamstown", "altona", "sunshine", "st kilda", "elwood",
    "brighton", "caulfield", "malvern", "camberwell", "balwyn", "doncaster", "box hill",
    "ringwood", "croydon", "frankston", "dandenong", "clayton", "oakleigh", "bentleigh",
    "moorabbin", "cheltenham", "mordialloc", "parkdale", "newtown", "geelong west", "belmont",
    "highton", "lara", "torquay", "bannockburn", "ballarat", "bendigo", "shepparton",
];

/// Geographic feature qualifiers used by the geo domain.
pub const GEO_QUALIFIERS: &[&str] = &[
    "upper", "lower", "north", "south", "east", "west", "little", "grand", "old", "new", "big",
    "long", "deep", "high", "broad", "stony", "sandy", "rocky", "silver", "golden", "black",
    "white", "red", "blue", "green", "clear", "cold", "dry", "hidden", "lost",
];

/// Geographic feature base names used by the geo domain.
pub const GEO_FEATURES: &[&str] = &[
    "river", "creek", "lake", "mountain", "hill", "valley", "ridge", "peak", "falls", "spring",
    "canyon", "gorge", "bay", "cove", "point", "island", "glacier", "plateau", "basin", "marsh",
    "lagoon", "bluff", "butte", "mesa", "summit", "pass", "fork", "bend", "rapids", "pond",
];

/// Place-name stems used by the geo domain.
pub const GEO_STEMS: &[&str] = &[
    "arlington", "bedford", "clarksville", "dunmore", "eastwood", "fairview", "glenwood",
    "harmony", "ironton", "jasper", "kingsley", "lakemont", "marion", "norwood", "oakdale",
    "pinehurst", "quincy", "riverside", "springfield", "thornton", "union", "vernon", "westfield",
    "yorktown", "zionsville", "ashford", "burlington", "crestview", "dover", "elmira",
    "franklin", "greenville", "hamilton", "ithaca", "jefferson", "kendall", "lancaster",
    "madison", "newport", "oxford",
];

/// Adjectives used in song and album titles.
pub const MUSIC_ADJECTIVES: &[&str] = &[
    "midnight", "golden", "broken", "silent", "electric", "crimson", "velvet", "wild", "lonely",
    "burning", "frozen", "distant", "hollow", "neon", "silver", "shattered", "endless", "fading",
    "restless", "savage", "gentle", "crooked", "haunted", "rising", "falling", "wandering",
    "forgotten", "blinding", "whispering", "roaring", "dancing", "dreaming", "weeping", "shining",
    "crystal", "scarlet", "emerald", "amber", "cobalt", "ivory",
];

/// Nouns used in song and album titles.
pub const MUSIC_NOUNS: &[&str] = &[
    "heart", "road", "river", "sky", "fire", "rain", "shadow", "dream", "night", "morning",
    "ocean", "mountain", "city", "train", "mirror", "ghost", "angel", "stranger", "garden",
    "storm", "wind", "moon", "sun", "star", "horizon", "echo", "memory", "promise", "secret",
    "journey", "highway", "harbor", "lantern", "ember", "thunder", "silence", "anthem", "ballad",
    "reverie", "serenade",
];

/// Artist first names (stage names) used by the music domain.
pub const ARTIST_FIRST: &[&str] = &[
    "johnny", "etta", "miles", "nina", "otis", "aretha", "chuck", "patsy", "hank", "loretta",
    "muddy", "billie", "django", "ella", "thelonious", "dusty", "marvin", "dolly", "stevie",
    "janis", "leonard", "joni", "townes", "emmylou", "gram", "lucinda", "waylon", "rosanne",
    "merle", "tammy", "conway", "charley", "buck", "porter", "skeeter", "bobbie", "glen", "roy",
    "wanda", "brenda",
];

/// Artist surnames used by the music domain.
pub const ARTIST_LAST: &[&str] = &[
    "cash", "james", "davis", "simone", "redding", "franklin", "berry", "cline", "williams",
    "lynn", "waters", "holiday", "reinhardt", "fitzgerald", "monk", "springfield", "gaye",
    "parton", "wonder", "joplin", "cohen", "mitchell", "vanzandt", "harris", "parsons",
    "nelson", "jennings", "haggard", "wynette", "twitty", "pride", "owens", "wagoner",
    "gentry", "campbell", "orbison", "jackson", "lee", "carter", "kristofferson",
];

/// Languages used by the music domain.
pub const LANGUAGES: &[&str] = &["english", "spanish", "french", "german", "italian", "portuguese"];

/// Product brands used by the shopping domain.
pub const BRANDS: &[&str] = &[
    "apple", "samsung", "xiaomi", "sony", "lg", "huawei", "lenovo", "asus", "acer", "dell",
    "logitech", "anker", "philips", "panasonic", "canon", "nikon", "bosch", "dyson", "nike",
    "adidas", "puma", "casio", "seiko", "fossil", "jbl", "bose", "sennheiser", "razer",
    "corsair", "kingston", "sandisk", "garmin", "fitbit", "gopro", "nintendo", "tplink",
    "netgear", "epson", "brother", "makita",
];

/// Product types used by the shopping domain.
pub const PRODUCT_TYPES: &[&str] = &[
    "smartphone", "laptop", "tablet", "headphones", "earbuds", "smartwatch", "camera", "monitor",
    "keyboard", "mouse", "charger", "powerbank", "speaker", "router", "printer", "projector",
    "drone", "backpack", "sneakers", "jacket", "blender", "kettle", "toaster", "vacuum",
    "drill", "sander", "microphone", "webcam", "tripod", "lens",
];

/// Product qualifiers used in listing titles.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "pro", "max", "mini", "ultra", "plus", "lite", "se", "air", "neo", "prime", "sport",
    "classic", "wireless", "bluetooth", "portable", "compact", "gaming", "premium", "slim",
    "rugged",
];

/// Marketing filler tokens sellers add to listing titles.
pub const PRODUCT_FILLER: &[&str] = &[
    "original", "official", "genuine", "new", "2023", "sale", "promo", "free shipping", "bnib",
    "100% authentic", "garansi resmi", "ready stock", "best seller", "limited", "murah",
    "termurah", "cod", "gratis ongkir", "bonus", "paket",
];

/// Colours used across domains.
pub const COLORS: &[&str] = &[
    "black", "white", "silver", "gray", "gold", "blue", "red", "green", "pink", "purple",
    "yellow", "orange", "navy", "teal", "beige", "brown",
];

/// Common abbreviations applied by the corruption model (full form → short form).
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("street", "st"),
    ("road", "rd"),
    ("avenue", "ave"),
    ("mountain", "mtn"),
    ("mount", "mt"),
    ("river", "riv"),
    ("north", "n"),
    ("south", "s"),
    ("east", "e"),
    ("west", "w"),
    ("saint", "st"),
    ("fort", "ft"),
    ("wireless", "wl"),
    ("bluetooth", "bt"),
    ("professional", "pro"),
    ("original", "ori"),
    ("and", "&"),
    ("with", "w/"),
    ("featuring", "feat"),
    ("limited", "ltd"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_lowercase() {
        let lists: &[&[&str]] = &[
            GIVEN_NAMES, SURNAMES, SUBURBS, GEO_QUALIFIERS, GEO_FEATURES, GEO_STEMS,
            MUSIC_ADJECTIVES, MUSIC_NOUNS, ARTIST_FIRST, ARTIST_LAST, LANGUAGES, BRANDS,
            PRODUCT_TYPES, PRODUCT_QUALIFIERS, PRODUCT_FILLER, COLORS,
        ];
        for list in lists {
            assert!(list.len() >= 6);
            for w in list.iter() {
                assert_eq!(*w, w.to_lowercase(), "vocab entries must be lowercase: {w}");
                assert!(!w.trim().is_empty());
            }
        }
    }

    #[test]
    fn lists_have_no_duplicates() {
        for list in [GIVEN_NAMES, SURNAMES, BRANDS, PRODUCT_TYPES, MUSIC_NOUNS] {
            let mut sorted: Vec<&str> = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len());
        }
    }

    #[test]
    fn abbreviations_map_long_to_short() {
        for (long, short) in ABBREVIATIONS {
            assert!(long.len() >= short.len(), "{long} -> {short}");
        }
    }
}
