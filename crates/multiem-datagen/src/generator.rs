//! The generic multi-source dataset generator.
//!
//! Given an [`EntityFactory`], a [`Corruptor`] and a [`GeneratorConfig`], the
//! generator draws ground-truth tuples (a clean entity published by 2+
//! sources, each with its own corrupted variant) and singleton entities
//! (published by exactly one source), shuffles every source table, and returns
//! a [`Dataset`] with attached [`GroundTruth`].

use crate::corruption::Corruptor;
use crate::domains::EntityFactory;
use multiem_table::{Dataset, EntityId, GroundTruth, MatchTuple, Table};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the multi-source generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Dataset name.
    pub name: String,
    /// Number of source tables `S`.
    pub num_sources: usize,
    /// Number of ground-truth matched tuples to generate.
    pub num_tuples: usize,
    /// Number of singleton entities (appear in exactly one source, no match).
    pub num_singletons: usize,
    /// Minimum tuple size (≥ 2).
    pub min_tuple_size: usize,
    /// Maximum tuple size (≤ `num_sources`).
    pub max_tuple_size: usize,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
}

impl GeneratorConfig {
    /// A small configuration suitable for unit tests.
    pub fn small_test(name: &str, num_sources: usize) -> Self {
        Self {
            name: name.to_string(),
            num_sources,
            num_tuples: 30,
            num_singletons: 15,
            min_tuple_size: 2,
            max_tuple_size: num_sources.min(4),
            seed: 42,
        }
    }
}

/// Summary statistics of a generated dataset (the rows of Table III).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Domain name.
    pub domain: String,
    /// Number of source tables.
    pub sources: usize,
    /// Number of attributes in the shared schema.
    pub attributes: usize,
    /// Total number of entities across all sources.
    pub entities: usize,
    /// Number of ground-truth matched tuples.
    pub tuples: usize,
    /// Number of ground-truth matched pairs implied by the tuples.
    pub pairs: usize,
}

impl DatasetStats {
    /// Compute statistics from a dataset with attached ground truth.
    pub fn from_dataset(domain: &str, ds: &Dataset) -> Self {
        let gt = ds.ground_truth();
        Self {
            name: ds.name().to_string(),
            domain: domain.to_string(),
            sources: ds.num_sources(),
            attributes: ds.schema().len(),
            entities: ds.total_entities(),
            tuples: gt.map(|g| g.len()).unwrap_or(0),
            pairs: gt.map(|g| g.pairs().len()).unwrap_or(0),
        }
    }
}

/// Generates multi-source datasets with ground truth.
#[derive(Debug, Clone)]
pub struct MultiSourceGenerator {
    config: GeneratorConfig,
}

impl MultiSourceGenerator {
    /// Create a generator.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (fewer than 2 sources,
    /// tuple sizes out of range).
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.num_sources >= 2, "need at least two sources");
        assert!(
            config.min_tuple_size >= 2,
            "tuples must contain at least two entities"
        );
        assert!(
            config.max_tuple_size >= config.min_tuple_size
                && config.max_tuple_size <= config.num_sources,
            "tuple size range must fit within the number of sources"
        );
        Self { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the dataset.
    pub fn generate(&self, factory: &dyn EntityFactory, corruptor: &Corruptor) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let schema = factory.schema();

        // Per-source record buffers, and the pre-shuffle position of every
        // tuple member: (source, position-in-source).
        let mut buffers: Vec<Vec<multiem_table::Record>> = vec![Vec::new(); cfg.num_sources];
        let mut tuples_positions: Vec<Vec<(u32, u32)>> = Vec::with_capacity(cfg.num_tuples);

        let all_sources: Vec<u32> = (0..cfg.num_sources as u32).collect();
        for t in 0..cfg.num_tuples {
            let size = rng.gen_range(cfg.min_tuple_size..=cfg.max_tuple_size);
            let mut chosen = all_sources.clone();
            chosen.shuffle(&mut rng);
            chosen.truncate(size);
            chosen.sort_unstable();
            let clean = factory.clean(t as u64, &mut rng);
            let mut members = Vec::with_capacity(size);
            for &source in &chosen {
                let record = factory.variant(&clean, source, corruptor, &mut rng);
                let pos = buffers[source as usize].len() as u32;
                buffers[source as usize].push(record);
                members.push((source, pos));
            }
            tuples_positions.push(members);
        }

        // Singletons: a unique entity published by exactly one source. Offsetting
        // the clean index by a large constant keeps them distinct from tuple
        // entities.
        for s in 0..cfg.num_singletons {
            let source = rng.gen_range(0..cfg.num_sources) as u32;
            let clean = factory.clean(u64::MAX / 2 + s as u64, &mut rng);
            let record = factory.variant(&clean, source, corruptor, &mut rng);
            buffers[source as usize].push(record);
        }

        // Shuffle every source table so row order carries no signal, remembering
        // where each original position went.
        let mut position_maps: Vec<Vec<u32>> = Vec::with_capacity(cfg.num_sources);
        let mut dataset = Dataset::new(cfg.name.clone(), schema.clone());
        for (s, buffer) in buffers.into_iter().enumerate() {
            let n = buffer.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            // order[new_row] = old_row; build the inverse map old_row -> new_row.
            let mut inverse = vec![0u32; n];
            for (new_row, &old_row) in order.iter().enumerate() {
                inverse[old_row] = new_row as u32;
            }
            let mut records: Vec<Option<multiem_table::Record>> =
                buffer.into_iter().map(Some).collect();
            let mut table = Table::new(format!("source-{s}"), schema.clone());
            for &old_row in &order {
                let record = records[old_row].take().expect("record moved exactly once");
                table.push(record).expect("generated record matches schema");
            }
            position_maps.push(inverse);
            dataset
                .add_table(table)
                .expect("generated table matches schema");
        }

        // Remap ground truth through the shuffles.
        let tuples: Vec<MatchTuple> = tuples_positions
            .into_iter()
            .map(|members| {
                MatchTuple::new(members.into_iter().map(|(source, old_row)| {
                    EntityId::new(source, position_maps[source as usize][old_row as usize])
                }))
            })
            .collect();
        dataset.set_ground_truth(GroundTruth::new(tuples));
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption::{CorruptionConfig, Corruptor};
    use crate::domains::Domain;
    use multiem_table::serialize_record;

    fn generate(domain: Domain, cfg: GeneratorConfig) -> Dataset {
        let factory = domain.factory();
        let corruptor = Corruptor::new(CorruptionConfig::default());
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn generates_requested_counts() {
        let cfg = GeneratorConfig {
            name: "music-test".into(),
            num_sources: 5,
            num_tuples: 40,
            num_singletons: 20,
            min_tuple_size: 2,
            max_tuple_size: 5,
            seed: 1,
        };
        let ds = generate(Domain::Music, cfg);
        assert_eq!(ds.num_sources(), 5);
        let gt = ds.ground_truth().unwrap();
        assert_eq!(gt.len(), 40);
        // Total entities = tuple members + singletons.
        let covered = gt.covered_entities();
        assert_eq!(ds.total_entities(), covered + 20);
        assert!((80..=200).contains(&covered));
    }

    #[test]
    fn ground_truth_members_come_from_distinct_sources() {
        let ds = generate(
            Domain::Person,
            GeneratorConfig::small_test("person-test", 4),
        );
        for tuple in ds.ground_truth().unwrap().tuples() {
            let mut sources: Vec<u32> = tuple.members().iter().map(|m| m.source).collect();
            let before = sources.len();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(
                sources.len(),
                before,
                "tuple has two entities from one source"
            );
        }
    }

    #[test]
    fn ground_truth_ids_are_valid_after_shuffling() {
        let ds = generate(Domain::Geo, GeneratorConfig::small_test("geo-test", 4));
        for tuple in ds.ground_truth().unwrap().tuples() {
            for &id in tuple.members() {
                assert!(
                    ds.record(id).is_ok(),
                    "ground truth points at missing record {id}"
                );
            }
        }
    }

    #[test]
    fn matched_entities_are_textually_similar() {
        // Without heavy corruption the variants of one clean entity must share
        // most of their serialized tokens — the signal MultiEM relies on.
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig::small_test("music-sim", 5);
        let ds = MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor);
        let opts = multiem_table::SerializeOptions::default();
        let mut overlaps = Vec::new();
        for tuple in ds.ground_truth().unwrap().tuples().iter().take(10) {
            let texts: Vec<String> = tuple
                .members()
                .iter()
                .map(|&id| serialize_record(ds.record(id).unwrap(), &opts))
                .collect();
            let first: std::collections::HashSet<&str> = texts[0].split_whitespace().collect();
            for other in &texts[1..] {
                let toks: std::collections::HashSet<&str> = other.split_whitespace().collect();
                let inter = first.intersection(&toks).count() as f64;
                let union = first.union(&toks).count() as f64;
                overlaps.push(inter / union);
            }
        }
        let mean: f64 = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        assert!(
            mean > 0.4,
            "mean token Jaccard {mean} too low for matched entities"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GeneratorConfig::small_test("geo-seed", 4);
        let a = generate(Domain::Geo, cfg.clone());
        let b = generate(Domain::Geo, cfg);
        assert_eq!(a.total_entities(), b.total_entities());
        assert_eq!(
            a.ground_truth().unwrap().pairs(),
            b.ground_truth().unwrap().pairs()
        );
        let id = a.entity_ids().next().unwrap();
        assert_eq!(a.record(id).unwrap(), b.record(id).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GeneratorConfig::small_test("geo-seed", 4);
        let a = generate(Domain::Geo, cfg.clone());
        cfg.seed = 999;
        let b = generate(Domain::Geo, cfg);
        assert_ne!(
            a.ground_truth().unwrap().pairs(),
            b.ground_truth().unwrap().pairs(),
            "different seeds should give different ground truth placements"
        );
    }

    #[test]
    fn stats_reflect_dataset() {
        let ds = generate(
            Domain::Product,
            GeneratorConfig::small_test("shopee-test", 6),
        );
        let stats = DatasetStats::from_dataset("product", &ds);
        assert_eq!(stats.sources, 6);
        assert_eq!(stats.attributes, 1);
        assert_eq!(stats.entities, ds.total_entities());
        assert_eq!(stats.tuples, ds.ground_truth().unwrap().len());
        assert!(stats.pairs >= stats.tuples);
    }

    #[test]
    #[should_panic(expected = "at least two sources")]
    fn rejects_single_source() {
        MultiSourceGenerator::new(GeneratorConfig {
            name: "bad".into(),
            num_sources: 1,
            num_tuples: 1,
            num_singletons: 0,
            min_tuple_size: 2,
            max_tuple_size: 2,
            seed: 0,
        });
    }

    #[test]
    #[should_panic(expected = "tuple size range")]
    fn rejects_tuple_size_larger_than_sources() {
        MultiSourceGenerator::new(GeneratorConfig {
            name: "bad".into(),
            num_sources: 3,
            num_tuples: 1,
            num_singletons: 0,
            min_tuple_size: 2,
            max_tuple_size: 5,
            seed: 0,
        });
    }
}
