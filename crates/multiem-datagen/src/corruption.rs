//! The corruption model: how the same real-world entity ends up with different
//! surface forms in different sources.
//!
//! Every source-specific copy of a clean entity is passed through a
//! [`Corruptor`], which applies (independently, with configurable
//! probabilities) the noise types observed in the real benchmark datasets:
//! character-level typos, token drops, token swaps, domain abbreviations,
//! marketing filler insertion, missing values, and numeric jitter.

use crate::vocab::ABBREVIATIONS;
use multiem_table::Value;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probabilities and magnitudes of the different noise types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Probability of a character-level typo per text value.
    pub typo_prob: f64,
    /// Probability of dropping one token from a multi-token text value.
    pub token_drop_prob: f64,
    /// Probability of swapping two adjacent tokens in a text value.
    pub token_swap_prob: f64,
    /// Probability of replacing a known long form with its abbreviation.
    pub abbreviation_prob: f64,
    /// Probability of setting a (non-key) value to null.
    pub null_prob: f64,
    /// Relative jitter applied to numeric values (e.g. `0.001` = ±0.1 %).
    pub numeric_jitter: f64,
    /// Probability of appending one extra filler token (supplied by the domain
    /// factory) to a text value.
    pub filler_prob: f64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self {
            typo_prob: 0.15,
            token_drop_prob: 0.15,
            token_swap_prob: 0.08,
            abbreviation_prob: 0.12,
            null_prob: 0.03,
            numeric_jitter: 0.0005,
            filler_prob: 0.10,
        }
    }
}

impl CorruptionConfig {
    /// A gentler corruption profile (clean administrative data such as the
    /// Person benchmark).
    pub fn light() -> Self {
        Self {
            typo_prob: 0.08,
            token_drop_prob: 0.04,
            token_swap_prob: 0.02,
            abbreviation_prob: 0.05,
            null_prob: 0.02,
            numeric_jitter: 0.0,
            filler_prob: 0.0,
        }
    }

    /// An aggressive profile (noisy marketplace listings such as Shopee).
    pub fn heavy() -> Self {
        Self {
            typo_prob: 0.25,
            token_drop_prob: 0.25,
            token_swap_prob: 0.15,
            abbreviation_prob: 0.20,
            null_prob: 0.0,
            numeric_jitter: 0.0,
            filler_prob: 0.45,
        }
    }

    /// No corruption at all (used in tests).
    pub fn none() -> Self {
        Self {
            typo_prob: 0.0,
            token_drop_prob: 0.0,
            token_swap_prob: 0.0,
            abbreviation_prob: 0.0,
            null_prob: 0.0,
            numeric_jitter: 0.0,
            filler_prob: 0.0,
        }
    }
}

/// Applies the corruption model to individual values.
#[derive(Debug, Clone)]
pub struct Corruptor {
    config: CorruptionConfig,
}

impl Corruptor {
    /// Create a corruptor.
    pub fn new(config: CorruptionConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CorruptionConfig {
        &self.config
    }

    /// Introduce a single character-level typo (substitution, deletion,
    /// insertion or transposition) into `text`.
    pub fn typo<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> String {
        let chars: Vec<char> = text.chars().collect();
        if chars.len() < 3 {
            return text.to_string();
        }
        let pos = rng.gen_range(1..chars.len() - 1);
        let mut out = chars.clone();
        match rng.gen_range(0..4u8) {
            0 => {
                // substitution with a nearby letter
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                out[pos] = c;
            }
            1 => {
                out.remove(pos);
            }
            2 => {
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                out.insert(pos, c);
            }
            _ => {
                out.swap(pos - 1, pos);
            }
        }
        out.into_iter().collect()
    }

    fn drop_token<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> String {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.len() < 3 {
            return text.to_string();
        }
        let drop = rng.gen_range(0..tokens.len());
        tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, t)| *t)
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn swap_tokens<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> String {
        let mut tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.len() < 2 {
            return text.to_string();
        }
        let i = rng.gen_range(0..tokens.len() - 1);
        tokens.swap(i, i + 1);
        tokens.join(" ")
    }

    fn abbreviate<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> String {
        let applicable: Vec<&(&str, &str)> = ABBREVIATIONS
            .iter()
            .filter(|(long, _)| text.split_whitespace().any(|t| t == *long))
            .collect();
        if applicable.is_empty() {
            return text.to_string();
        }
        let (long, short) = applicable[rng.gen_range(0..applicable.len())];
        text.split_whitespace()
            .map(|t| {
                if t == *long {
                    (*short).to_string()
                } else {
                    t.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Corrupt a text value; `filler` is an optional domain-specific token pool
    /// from which marketing noise is drawn, `allow_null` controls whether the
    /// value may be blanked entirely.
    pub fn corrupt_text<R: Rng + ?Sized>(
        &self,
        text: &str,
        filler: &[&str],
        allow_null: bool,
        rng: &mut R,
    ) -> Value {
        if allow_null && rng.gen_bool(self.config.null_prob) {
            return Value::Null;
        }
        let mut out = text.to_string();
        if rng.gen_bool(self.config.abbreviation_prob) {
            out = self.abbreviate(&out, rng);
        }
        if rng.gen_bool(self.config.token_drop_prob) {
            out = self.drop_token(&out, rng);
        }
        if rng.gen_bool(self.config.token_swap_prob) {
            out = self.swap_tokens(&out, rng);
        }
        if rng.gen_bool(self.config.typo_prob) {
            out = self.typo(&out, rng);
        }
        if !filler.is_empty() && rng.gen_bool(self.config.filler_prob) {
            let extra = filler[rng.gen_range(0..filler.len())];
            if rng.gen_bool(0.5) {
                out = format!("{extra} {out}");
            } else {
                out = format!("{out} {extra}");
            }
        }
        Value::Text(out)
    }

    /// Corrupt a numeric value with relative jitter and optional nulling.
    pub fn corrupt_number<R: Rng + ?Sized>(
        &self,
        value: f64,
        allow_null: bool,
        rng: &mut R,
    ) -> Value {
        if allow_null && rng.gen_bool(self.config.null_prob) {
            return Value::Null;
        }
        if self.config.numeric_jitter > 0.0 {
            let jitter = rng.gen_range(-self.config.numeric_jitter..=self.config.numeric_jitter);
            Value::Number(value + value.abs().max(1.0) * jitter)
        } else {
            Value::Number(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn none_config_is_identity_for_text() {
        let c = Corruptor::new(CorruptionConfig::none());
        let mut r = rng();
        for _ in 0..20 {
            let v = c.corrupt_text("apple iphone 8 plus", &[], true, &mut r);
            assert_eq!(v, Value::Text("apple iphone 8 plus".into()));
        }
    }

    #[test]
    fn typo_changes_at_most_locally() {
        let c = Corruptor::new(CorruptionConfig::default());
        let mut r = rng();
        let original = "chameleon";
        let mutated = c.typo(original, &mut r);
        // Length changes by at most one and the first character is preserved.
        assert!((mutated.chars().count() as i64 - original.len() as i64).abs() <= 1);
        assert_eq!(mutated.chars().next(), original.chars().next());
        // Very short strings are returned untouched.
        assert_eq!(c.typo("ab", &mut r), "ab");
    }

    #[test]
    fn heavy_corruption_usually_changes_long_text() {
        let c = Corruptor::new(CorruptionConfig::heavy());
        let mut r = rng();
        let original = "wireless bluetooth headphones with original microphone and charger";
        let mut changed = 0;
        for _ in 0..50 {
            if c.corrupt_text(original, &["promo"], false, &mut r) != Value::Text(original.into()) {
                changed += 1;
            }
        }
        assert!(changed > 30, "only {changed}/50 corrupted");
    }

    #[test]
    fn nulling_respects_allow_flag() {
        let cfg = CorruptionConfig {
            null_prob: 1.0,
            ..CorruptionConfig::none()
        };
        let c = Corruptor::new(cfg);
        let mut r = rng();
        assert_eq!(c.corrupt_text("abc def", &[], true, &mut r), Value::Null);
        assert_eq!(
            c.corrupt_text("abc def", &[], false, &mut r),
            Value::Text("abc def".into())
        );
        assert_eq!(c.corrupt_number(5.0, true, &mut r), Value::Null);
    }

    #[test]
    fn numeric_jitter_stays_small() {
        let cfg = CorruptionConfig {
            numeric_jitter: 0.001,
            ..CorruptionConfig::none()
        };
        let c = Corruptor::new(cfg);
        let mut r = rng();
        for _ in 0..20 {
            let v = c.corrupt_number(145.3, false, &mut r);
            let n = v.as_number().unwrap();
            assert!((n - 145.3).abs() < 1.0);
        }
        // Zero jitter is exact.
        let c0 = Corruptor::new(CorruptionConfig::none());
        assert_eq!(c0.corrupt_number(42.0, false, &mut r), Value::Number(42.0));
    }

    #[test]
    fn abbreviation_replaces_known_tokens() {
        let cfg = CorruptionConfig {
            abbreviation_prob: 1.0,
            ..CorruptionConfig::none()
        };
        let c = Corruptor::new(cfg);
        let mut r = rng();
        let v = c.corrupt_text("north mountain river", &[], false, &mut r);
        let text = v.as_text().unwrap().to_string();
        assert_ne!(text, "north mountain river");
        assert!(text.split_whitespace().count() == 3);
    }

    #[test]
    fn filler_appends_a_token() {
        let cfg = CorruptionConfig {
            filler_prob: 1.0,
            ..CorruptionConfig::none()
        };
        let c = Corruptor::new(cfg);
        let mut r = rng();
        let v = c.corrupt_text("samsung galaxy s21", &["promo", "sale"], false, &mut r);
        let text = v.as_text().unwrap();
        assert!(text.contains("promo") || text.contains("sale"));
        assert!(text.contains("samsung galaxy s21"));
    }

    #[test]
    fn token_drop_and_swap_preserve_vocabulary() {
        let cfg = CorruptionConfig {
            token_drop_prob: 1.0,
            token_swap_prob: 1.0,
            ..CorruptionConfig::none()
        };
        let c = Corruptor::new(cfg);
        let mut r = rng();
        let v = c.corrupt_text("alpha beta gamma delta", &[], false, &mut r);
        let text = v.as_text().unwrap();
        for tok in text.split_whitespace() {
            assert!(["alpha", "beta", "gamma", "delta"].contains(&tok));
        }
        assert!(text.split_whitespace().count() == 3);
    }
}
