//! Domain-specific entity factories (geo, music, person, product).
//!
//! Each factory knows the schema of its domain, how to draw a *clean*
//! real-world entity, and how to derive a *source-specific variant* of that
//! entity (re-generated identifiers, corrupted text, jittered numbers). The
//! schemas intentionally mix informative and uninformative attributes so the
//! automated attribute selection of MultiEM (Table VII) has something to do.

use crate::corruption::Corruptor;
use crate::vocab;
use multiem_table::{Record, Schema, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The four benchmark domains of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Geographic features (Geo): `name, longtitude, latitude`.
    Geo,
    /// Music tracks (Music-20/200/2000):
    /// `id, number, title, length, artist, album, year, language`.
    Music,
    /// Person records (Person): `givenname, surname, suburb, postcode`.
    Person,
    /// Marketplace listings (Shopee): `title`.
    Product,
}

impl Domain {
    /// Factory for this domain.
    pub fn factory(self) -> Box<dyn EntityFactory> {
        match self {
            Domain::Geo => Box::new(GeoFactory),
            Domain::Music => Box::new(MusicFactory),
            Domain::Person => Box::new(PersonFactory),
            Domain::Product => Box::new(ProductFactory),
        }
    }

    /// Short name used in dataset names and experiment records.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Geo => "geo",
            Domain::Music => "music",
            Domain::Person => "person",
            Domain::Product => "product",
        }
    }
}

/// A generator of clean entities and their per-source variants.
pub trait EntityFactory: Send + Sync {
    /// The domain schema.
    fn schema(&self) -> Arc<Schema>;

    /// Draw the canonical (clean) form of real-world entity number `index`.
    fn clean(&self, index: u64, rng: &mut dyn rand::RngCore) -> Vec<Value>;

    /// Derive the copy of `clean` that source `source` publishes.
    fn variant(
        &self,
        clean: &[Value],
        source: u32,
        corruptor: &Corruptor,
        rng: &mut dyn rand::RngCore,
    ) -> Record;

    /// The attributes a domain expert would call informative for matching
    /// (used to check Table VII against expectations).
    fn informative_attributes(&self) -> Vec<&'static str>;
}

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, list: &[&'a str]) -> &'a str {
    list[rng.gen_range(0..list.len())]
}

// ---------------------------------------------------------------------------
// Geo
// ---------------------------------------------------------------------------

/// Factory for the Geo domain.
#[derive(Debug, Clone, Copy)]
pub struct GeoFactory;

impl EntityFactory for GeoFactory {
    fn schema(&self) -> Arc<Schema> {
        // "longtitude" reproduces the attribute spelling of the original dataset.
        Schema::new(["name", "longtitude", "latitude"]).shared()
    }

    fn clean(&self, index: u64, rng: &mut dyn rand::RngCore) -> Vec<Value> {
        let qualifier = pick(rng, vocab::GEO_QUALIFIERS);
        let stem = pick(rng, vocab::GEO_STEMS);
        let feature = pick(rng, vocab::GEO_FEATURES);
        let name = if index.is_multiple_of(3) {
            format!("{stem} {feature}")
        } else {
            format!("{qualifier} {stem} {feature}")
        };
        let lon = rng.gen_range(-180.0f64..180.0);
        let lat = rng.gen_range(-90.0f64..90.0);
        vec![
            Value::Text(name),
            Value::Number((lon * 1e4).round() / 1e4),
            Value::Number((lat * 1e4).round() / 1e4),
        ]
    }

    fn variant(
        &self,
        clean: &[Value],
        _source: u32,
        corruptor: &Corruptor,
        rng: &mut dyn rand::RngCore,
    ) -> Record {
        let name = clean[0].as_text().unwrap_or("");
        let lon = clean[1].as_number().unwrap_or(0.0);
        let lat = clean[2].as_number().unwrap_or(0.0);
        Record::new(vec![
            corruptor.corrupt_text(name, &[], false, rng),
            corruptor.corrupt_number(lon, true, rng),
            corruptor.corrupt_number(lat, true, rng),
        ])
    }

    fn informative_attributes(&self) -> Vec<&'static str> {
        vec!["name"]
    }
}

// ---------------------------------------------------------------------------
// Music
// ---------------------------------------------------------------------------

/// Factory for the Music domain.
#[derive(Debug, Clone, Copy)]
pub struct MusicFactory;

impl EntityFactory for MusicFactory {
    fn schema(&self) -> Arc<Schema> {
        Schema::new([
            "id", "number", "title", "length", "artist", "album", "year", "language",
        ])
        .shared()
    }

    fn clean(&self, index: u64, rng: &mut dyn rand::RngCore) -> Vec<Value> {
        let title = format!(
            "{} {} {}",
            pick(rng, vocab::MUSIC_ADJECTIVES),
            pick(rng, vocab::MUSIC_NOUNS),
            pick(rng, vocab::MUSIC_NOUNS)
        );
        let artist = format!(
            "{} {}",
            pick(rng, vocab::ARTIST_FIRST),
            pick(rng, vocab::ARTIST_LAST)
        );
        let album = format!(
            "{} {}",
            pick(rng, vocab::MUSIC_ADJECTIVES),
            pick(rng, vocab::MUSIC_NOUNS)
        );
        let year = rng.gen_range(1950..=2020) as f64;
        let language = if rng.gen_bool(0.7) {
            "english"
        } else {
            pick(rng, vocab::LANGUAGES)
        };
        let number = (index % 20 + 1) as f64;
        let length = rng.gen_range(120..=420) as f64;
        vec![
            // The clean id is a placeholder; every source re-generates its own.
            Value::Text(format!("track-{index}")),
            Value::Number(number),
            Value::Text(title),
            Value::Number(length),
            Value::Text(artist),
            Value::Text(album),
            Value::Number(year),
            Value::Text(language.to_string()),
        ]
    }

    fn variant(
        &self,
        clean: &[Value],
        source: u32,
        corruptor: &Corruptor,
        rng: &mut dyn rand::RngCore,
    ) -> Record {
        // Source-specific opaque identifier, mimicking "WoM14513028"-style ids.
        let id = format!("wom{}{:07}", source, rng.gen_range(0..10_000_000u64));
        let title = clean[2].as_text().unwrap_or("");
        let artist = clean[4].as_text().unwrap_or("");
        let album = clean[5].as_text().unwrap_or("");
        let year = clean[6].as_number().unwrap_or(2000.0);
        let language = clean[7].as_text().unwrap_or("english");
        // The catalogue-specific attributes are unreliable across sources, as
        // in the MusicBrainz-derived benchmarks: each platform numbers tracks
        // differently, encodes a different cut (length), and may report a
        // re-release year.
        let number = if rng.gen_bool(0.5) {
            clean[1].as_number().unwrap_or(1.0)
        } else {
            rng.gen_range(1..=20) as f64
        };
        let length =
            clean[3].as_number().unwrap_or(200.0) + rng.gen_range(-15.0..=15.0_f64).round();
        let year = if rng.gen_bool(0.3) {
            year + rng.gen_range(-2.0..=2.0_f64).round()
        } else {
            year
        };
        Record::new(vec![
            Value::Text(id),
            Value::Number(number),
            corruptor.corrupt_text(title, &[], false, rng),
            Value::Number(length),
            corruptor.corrupt_text(artist, &[], true, rng),
            corruptor.corrupt_text(album, &[], true, rng),
            corruptor.corrupt_number(year, true, rng),
            Value::Text(language.to_string()),
        ])
    }

    fn informative_attributes(&self) -> Vec<&'static str> {
        vec!["title", "artist", "album"]
    }
}

// ---------------------------------------------------------------------------
// Person
// ---------------------------------------------------------------------------

/// Factory for the Person domain.
#[derive(Debug, Clone, Copy)]
pub struct PersonFactory;

impl EntityFactory for PersonFactory {
    fn schema(&self) -> Arc<Schema> {
        Schema::new(["givenname", "surname", "suburb", "postcode"]).shared()
    }

    fn clean(&self, _index: u64, rng: &mut dyn rand::RngCore) -> Vec<Value> {
        let given = pick(rng, vocab::GIVEN_NAMES);
        let sur = pick(rng, vocab::SURNAMES);
        let suburb = pick(rng, vocab::SUBURBS);
        let postcode = rng.gen_range(1000..=9999) as f64;
        vec![
            Value::Text(given.to_string()),
            Value::Text(sur.to_string()),
            Value::Text(suburb.to_string()),
            Value::Number(postcode),
        ]
    }

    fn variant(
        &self,
        clean: &[Value],
        _source: u32,
        corruptor: &Corruptor,
        rng: &mut dyn rand::RngCore,
    ) -> Record {
        let given = clean[0].as_text().unwrap_or("");
        let sur = clean[1].as_text().unwrap_or("");
        let suburb = clean[2].as_text().unwrap_or("");
        let postcode = clean[3].as_number().unwrap_or(3000.0);
        Record::new(vec![
            corruptor.corrupt_text(given, &[], false, rng),
            corruptor.corrupt_text(sur, &[], false, rng),
            corruptor.corrupt_text(suburb, &[], true, rng),
            corruptor.corrupt_number(postcode, true, rng),
        ])
    }

    fn informative_attributes(&self) -> Vec<&'static str> {
        vec!["givenname", "surname", "suburb", "postcode"]
    }
}

// ---------------------------------------------------------------------------
// Product (Shopee analogue)
// ---------------------------------------------------------------------------

/// Factory for the Product domain (single `title` attribute, many sources).
#[derive(Debug, Clone, Copy)]
pub struct ProductFactory;

impl EntityFactory for ProductFactory {
    fn schema(&self) -> Arc<Schema> {
        Schema::new(["title"]).shared()
    }

    fn clean(&self, index: u64, rng: &mut dyn rand::RngCore) -> Vec<Value> {
        let brand = pick(rng, vocab::BRANDS);
        let ptype = pick(rng, vocab::PRODUCT_TYPES);
        let qualifier = pick(rng, vocab::PRODUCT_QUALIFIERS);
        let model = rng.gen_range(1..=99u32);
        let color = pick(rng, vocab::COLORS);
        let title = if index.is_multiple_of(4) {
            format!("{brand} {ptype} {qualifier} {model}")
        } else {
            format!("{brand} {ptype} {qualifier} {model} {color}")
        };
        vec![Value::Text(title)]
    }

    fn variant(
        &self,
        clean: &[Value],
        _source: u32,
        corruptor: &Corruptor,
        rng: &mut dyn rand::RngCore,
    ) -> Record {
        let title = clean[0].as_text().unwrap_or("");
        Record::new(vec![corruptor.corrupt_text(
            title,
            vocab::PRODUCT_FILLER,
            false,
            rng,
        )])
    }

    fn informative_attributes(&self) -> Vec<&'static str> {
        vec!["title"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption::CorruptionConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn schemas_match_the_paper() {
        assert_eq!(
            Domain::Music.factory().schema().names().collect::<Vec<_>>(),
            vec!["id", "number", "title", "length", "artist", "album", "year", "language"]
        );
        assert_eq!(
            Domain::Geo.factory().schema().names().collect::<Vec<_>>(),
            vec!["name", "longtitude", "latitude"]
        );
        assert_eq!(
            Domain::Person
                .factory()
                .schema()
                .names()
                .collect::<Vec<_>>(),
            vec!["givenname", "surname", "suburb", "postcode"]
        );
        assert_eq!(
            Domain::Product
                .factory()
                .schema()
                .names()
                .collect::<Vec<_>>(),
            vec!["title"]
        );
    }

    #[test]
    fn clean_records_have_schema_arity() {
        let mut r = rng();
        for domain in [Domain::Geo, Domain::Music, Domain::Person, Domain::Product] {
            let f = domain.factory();
            let clean = f.clean(3, &mut r);
            assert_eq!(clean.len(), f.schema().len(), "domain {:?}", domain);
        }
    }

    #[test]
    fn variants_have_schema_arity_and_differ_in_id() {
        let mut r = rng();
        let f = MusicFactory;
        let corruptor = Corruptor::new(CorruptionConfig::none());
        let clean = f.clean(5, &mut r);
        let v1 = f.variant(&clean, 0, &corruptor, &mut r);
        let v2 = f.variant(&clean, 1, &corruptor, &mut r);
        assert_eq!(v1.arity(), 8);
        // The opaque id differs between sources even without corruption.
        assert_ne!(v1.value(0), v2.value(0));
        // The title is identical without corruption.
        assert_eq!(v1.value(2), v2.value(2));
    }

    #[test]
    fn variants_of_same_entity_share_most_title_tokens() {
        let mut r = rng();
        let f = ProductFactory;
        let corruptor = Corruptor::new(CorruptionConfig::default());
        let clean = f.clean(9, &mut r);
        let clean_title = clean[0].as_text().unwrap().to_string();
        let v = f.variant(&clean, 0, &corruptor, &mut r);
        let variant_title = v.value(0).unwrap().render();
        let clean_tokens: std::collections::HashSet<&str> =
            clean_title.split_whitespace().collect();
        let shared = variant_title
            .split_whitespace()
            .filter(|t| clean_tokens.contains(t))
            .count();
        assert!(
            shared >= clean_tokens.len() / 2,
            "{clean_title} vs {variant_title}"
        );
    }

    #[test]
    fn distinct_entities_get_distinct_clean_forms_mostly() {
        let mut r = rng();
        let f = MusicFactory;
        let mut titles = std::collections::HashSet::new();
        for i in 0..200 {
            let clean = f.clean(i, &mut r);
            titles.insert(format!("{}|{}", clean[2].render(), clean[4].render()));
        }
        assert!(titles.len() > 190, "too many collisions: {}", titles.len());
    }

    #[test]
    fn domain_names_and_informative_attributes() {
        assert_eq!(Domain::Geo.name(), "geo");
        assert_eq!(
            Domain::Music.factory().informative_attributes(),
            vec!["title", "artist", "album"]
        );
        assert_eq!(Domain::Person.factory().informative_attributes().len(), 4);
    }
}
